"""Authoritative DNS data: zones and the registration helpers sites use.

A :class:`Zone` is a flat name-to-records map (the reproduction does not need
delegation).  Sites behind a neutral ISP publish their address, their
end-to-end public key, and one NEUT record per provider (multi-homed sites
publish several, §3.5).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..crypto.rsa import RsaPublicKey
from ..exceptions import NxDomainError
from ..packet.addresses import IPv4Address
from .records import RecordType, ResourceRecord


class Zone:
    """A flat authoritative zone."""

    def __init__(self, origin: str = ".") -> None:
        self.origin = origin
        self._records: Dict[str, List[ResourceRecord]] = {}

    # -- registration -----------------------------------------------------------

    def add_record(self, record: ResourceRecord) -> None:
        """Add one record (duplicates are kept; DNS allows record sets)."""
        self._records.setdefault(record.name, []).append(record)

    def register_host(
        self,
        name: str,
        address: IPv4Address,
        *,
        public_key: Optional[RsaPublicKey] = None,
        neutralizer_addresses: Optional[Iterable[IPv4Address]] = None,
        ttl: int = 3600,
    ) -> None:
        """Register a host with the records the bootstrap needs."""
        self.add_record(ResourceRecord.a(name, address, ttl))
        if public_key is not None:
            self.add_record(ResourceRecord.key(name, public_key, ttl))
        neutralizers = list(neutralizer_addresses or [])
        if neutralizers:
            self.add_record(ResourceRecord.neut(name, neutralizers, ttl))

    def remove_name(self, name: str) -> None:
        """Delete every record for ``name`` (used to simulate churn)."""
        self._records.pop(name, None)

    # -- queries -------------------------------------------------------------------

    def lookup(self, name: str, rtype: Optional[RecordType] = None) -> List[ResourceRecord]:
        """Return the records for ``name`` (optionally filtered by type).

        Raises :class:`NxDomainError` when the name does not exist at all; an
        existing name with no record of the requested type returns ``[]``.
        """
        if name not in self._records:
            raise NxDomainError(f"no such name {name!r}")
        records = self._records[name]
        if rtype is None:
            return list(records)
        return [record for record in records if record.rtype == rtype]

    def names(self) -> List[str]:
        """All registered names."""
        return list(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __len__(self) -> int:
        return len(self._records)
