"""Encrypted DNS transport to third-party resolvers.

Section 3.1: "a source needs to encrypt its DNS queries and send the queries
to DNS resolvers that are not controlled by the discriminatory ISP".  The
transport here is a one-round-trip scheme: the client generates a fresh
response key, encrypts ``(response_key || nonce || query)`` under the
resolver's RSA public key, and the resolver returns the response encrypted
under the response key in CTR mode.  The access ISP sees only the resolver's
address and ciphertext — it can tell *that* an encrypted DNS exchange happened
(§3.6 accepts this) but not *which name* was asked.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..crypto.backend import get_cipher
from ..crypto.modes import ctr_decrypt, ctr_encrypt
from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..crypto.rsa import RsaPrivateKey, RsaPublicKey
from ..exceptions import DnsError

#: First byte of every secure-transport payload, distinguishing it from
#: cleartext DNS on the same port.
SECURE_MAGIC = 0xD5

_RESPONSE_KEY_LEN = 16
_NONCE_LEN = 8


@dataclass(frozen=True)
class SecureQueryState:
    """Client-side state needed to decrypt the matching response."""

    response_key: bytes
    nonce: bytes


def encrypt_query(
    resolver_public_key: RsaPublicKey,
    query_bytes: bytes,
    rng: Optional[RandomSource] = None,
    backend: Optional[str] = None,
) -> Tuple[bytes, SecureQueryState]:
    """Encrypt a DNS query for a third-party resolver.

    Returns the wire payload and the state the client keeps to decrypt the
    response.  The query itself rides in CTR mode under the fresh response
    key, so arbitrarily long queries fit regardless of the RSA modulus size.
    """
    source = rng or DEFAULT_SOURCE
    response_key = source.random_bytes(_RESPONSE_KEY_LEN)
    nonce = source.random_bytes(_NONCE_LEN)
    sealed = resolver_public_key.encrypt(response_key + nonce, source)
    cipher = get_cipher(response_key, backend=backend)
    encrypted_query = ctr_encrypt(cipher, nonce, query_bytes)
    payload = (
        struct.pack("!BH", SECURE_MAGIC, len(sealed)) + sealed + encrypted_query
    )
    return payload, SecureQueryState(response_key=response_key, nonce=nonce)


def is_secure_payload(payload: bytes) -> bool:
    """Return ``True`` if ``payload`` looks like a secure-transport query."""
    return len(payload) >= 3 and payload[0] == SECURE_MAGIC


def decrypt_query(
    resolver_private_key: RsaPrivateKey, payload: bytes, backend: Optional[str] = None
) -> Tuple[bytes, SecureQueryState]:
    """Resolver side: recover the query bytes and the response state."""
    if not is_secure_payload(payload):
        raise DnsError("not a secure DNS payload")
    sealed_len = struct.unpack("!H", payload[1:3])[0]
    if len(payload) < 3 + sealed_len:
        raise DnsError("truncated secure DNS payload")
    sealed = payload[3:3 + sealed_len]
    encrypted_query = payload[3 + sealed_len:]
    opened = resolver_private_key.decrypt(sealed)
    if len(opened) != _RESPONSE_KEY_LEN + _NONCE_LEN:
        raise DnsError("malformed secure DNS key material")
    response_key = opened[:_RESPONSE_KEY_LEN]
    nonce = opened[_RESPONSE_KEY_LEN:]
    cipher = get_cipher(response_key, backend=backend)
    query_bytes = ctr_decrypt(cipher, nonce, encrypted_query)
    return query_bytes, SecureQueryState(response_key=response_key, nonce=nonce)


def _response_nonce(nonce: bytes) -> bytes:
    """Derive the response-direction nonce (flip the last byte) to avoid reuse."""
    return nonce[:-1] + bytes([nonce[-1] ^ 0xFF])


def encrypt_response(
    state: SecureQueryState, response_bytes: bytes, backend: Optional[str] = None
) -> bytes:
    """Resolver side: encrypt the response under the client's response key."""
    cipher = get_cipher(state.response_key, backend=backend)
    encrypted = ctr_encrypt(cipher, _response_nonce(state.nonce), response_bytes)
    return struct.pack("!B", SECURE_MAGIC) + encrypted


def decrypt_response(
    state: SecureQueryState, payload: bytes, backend: Optional[str] = None
) -> bytes:
    """Client side: decrypt a response produced by :func:`encrypt_response`."""
    if not payload or payload[0] != SECURE_MAGIC:
        raise DnsError("not a secure DNS response")
    cipher = get_cipher(state.response_key, backend=backend)
    return ctr_decrypt(cipher, _response_nonce(state.nonce), payload[1:])
