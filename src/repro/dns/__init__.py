"""DNS substrate: records, zones, resolvers, stub clients, encrypted transport."""

from .messages import (
    DNS_PORT,
    RCODE_NXDOMAIN,
    RCODE_OK,
    RCODE_SERVFAIL,
    DnsQuery,
    DnsResponse,
    query_name_from_payload,
)
from .records import BootstrapInfo, RecordType, ResourceRecord
from .resolver import DnsResolverService
from .secure import (
    SECURE_MAGIC,
    SecureQueryState,
    decrypt_query,
    decrypt_response,
    encrypt_query,
    encrypt_response,
    is_secure_payload,
)
from .stub import DEFAULT_CLIENT_PORT, ResolverConfig, StubResolver
from .zone import Zone

__all__ = [
    "DNS_PORT",
    "RCODE_NXDOMAIN",
    "RCODE_OK",
    "RCODE_SERVFAIL",
    "DnsQuery",
    "DnsResponse",
    "query_name_from_payload",
    "BootstrapInfo",
    "RecordType",
    "ResourceRecord",
    "DnsResolverService",
    "SECURE_MAGIC",
    "SecureQueryState",
    "decrypt_query",
    "decrypt_response",
    "encrypt_query",
    "encrypt_response",
    "is_secure_payload",
    "DEFAULT_CLIENT_PORT",
    "ResolverConfig",
    "StubResolver",
    "Zone",
]
