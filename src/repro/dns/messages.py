"""DNS message wire formats (simplified query/response encoding).

The encoding is intentionally minimal but real: queries carry the name in
clear text, which is exactly what lets a discriminatory access ISP "delay
queries for www.google.com" (§3.1) — the DPI classifier in
:mod:`repro.discrimination` parses these very bytes.  The secure transport in
:mod:`repro.dns.secure` wraps these messages so the name disappears from the
access ISP's view.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from ..exceptions import DnsError
from .records import RecordType, ResourceRecord

#: Well-known DNS port used by resolvers in the simulator.
DNS_PORT = 53

RCODE_OK = 0
RCODE_NXDOMAIN = 3
RCODE_SERVFAIL = 2


@dataclass(frozen=True)
class DnsQuery:
    """A DNS query for one name (optionally one record type)."""

    query_id: int
    name: str
    rtype: Optional[RecordType] = None

    def pack(self) -> bytes:
        """Serialize the query."""
        name_bytes = self.name.encode("ascii")
        if len(name_bytes) > 255:
            raise DnsError("query name too long")
        rtype_value = int(self.rtype) if self.rtype is not None else 0
        return struct.pack("!HHB", self.query_id, rtype_value, len(name_bytes)) + name_bytes

    @classmethod
    def unpack(cls, data: bytes) -> "DnsQuery":
        """Parse a query serialized by :meth:`pack`."""
        if len(data) < 5:
            raise DnsError("truncated DNS query")
        query_id, rtype_value, name_len = struct.unpack("!HHB", data[:5])
        if len(data) < 5 + name_len:
            raise DnsError("truncated DNS query name")
        name = data[5:5 + name_len].decode("ascii")
        rtype = RecordType(rtype_value) if rtype_value else None
        return cls(query_id=query_id, name=name, rtype=rtype)


@dataclass(frozen=True)
class DnsResponse:
    """A DNS response carrying zero or more records."""

    query_id: int
    rcode: int
    records: tuple

    @classmethod
    def ok(cls, query_id: int, records: List[ResourceRecord]) -> "DnsResponse":
        """Build a successful response."""
        return cls(query_id=query_id, rcode=RCODE_OK, records=tuple(records))

    @classmethod
    def nxdomain(cls, query_id: int) -> "DnsResponse":
        """Build an NXDOMAIN response."""
        return cls(query_id=query_id, rcode=RCODE_NXDOMAIN, records=())

    def pack(self) -> bytes:
        """Serialize the response."""
        header = struct.pack("!HBB", self.query_id, self.rcode, len(self.records))
        return header + b"".join(record.pack() for record in self.records)

    @classmethod
    def unpack(cls, data: bytes) -> "DnsResponse":
        """Parse a response serialized by :meth:`pack`."""
        if len(data) < 4:
            raise DnsError("truncated DNS response")
        query_id, rcode, count = struct.unpack("!HBB", data[:4])
        records = []
        offset = 4
        for _ in range(count):
            record, consumed = ResourceRecord.unpack(data[offset:])
            records.append(record)
            offset += consumed
        return cls(query_id=query_id, rcode=rcode, records=tuple(records))

    @property
    def is_ok(self) -> bool:
        """``True`` for a successful response."""
        return self.rcode == RCODE_OK


def query_name_from_payload(payload: bytes) -> Optional[str]:
    """Best-effort extraction of the queried name from a cleartext DNS payload.

    Returns ``None`` for encrypted (secure-transport) payloads or anything that
    does not parse — which is precisely what the DPI-based discrimination
    policy experiences once clients switch to encrypted DNS.
    """
    try:
        return DnsQuery.unpack(payload).name
    except (DnsError, UnicodeDecodeError, ValueError):
        return None
