"""Resolver service: answers queries from a zone over the simulated network.

A :class:`DnsResolverService` attaches to a :class:`repro.netsim.node.Host`
and answers both cleartext and secure-transport queries on port 53.  The
"third party" resolvers of §3.1 — run by a non-discriminatory ISP, an overlay
like PlanetLab, or Google itself — are just instances of this service placed
on hosts outside the discriminatory ISP, holding an RSA key pair whose public
half clients are configured with.
"""

from __future__ import annotations

from typing import Optional

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..crypto.rsa import RsaKeyPair, RsaPublicKey
from ..exceptions import DnsError, NxDomainError
from ..netsim.node import Host
from ..packet.builder import udp_packet
from ..packet.packet import Packet
from .messages import DNS_PORT, DnsQuery, DnsResponse
from .secure import decrypt_query, encrypt_response, is_secure_payload
from .zone import Zone


class DnsResolverService:
    """An authoritative/recursive resolver bound to one host."""

    def __init__(
        self,
        zone: Zone,
        *,
        keypair: Optional[RsaKeyPair] = None,
        port: int = DNS_PORT,
        rng: Optional[RandomSource] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.zone = zone
        self.keypair = keypair
        self.port = port
        self._rng = rng or DEFAULT_SOURCE
        self._backend = backend
        self.host: Optional[Host] = None
        self.queries_served = 0
        self.secure_queries_served = 0
        self.failures = 0

    @property
    def public_key(self) -> Optional[RsaPublicKey]:
        """Public key clients use for the secure transport (None = cleartext only)."""
        return self.keypair.public if self.keypair is not None else None

    @property
    def address(self):
        """The address clients should send queries to."""
        if self.host is None:
            raise DnsError("resolver service is not attached to a host")
        return self.host.address

    def attach(self, host: Host) -> "DnsResolverService":
        """Bind the service to a host's UDP port."""
        self.host = host
        host.register_port_handler(self.port, self._handle_packet)
        return self

    # -- request handling ----------------------------------------------------------

    def _handle_packet(self, packet: Packet, host: Host) -> None:
        payload = packet.payload
        try:
            if is_secure_payload(payload):
                self._handle_secure(packet, host, payload)
            else:
                self._handle_cleartext(packet, host, payload)
        except DnsError:
            self.failures += 1

    def _handle_cleartext(self, packet: Packet, host: Host, payload: bytes) -> None:
        query = DnsQuery.unpack(payload)
        response = self._answer(query)
        self.queries_served += 1
        self._reply(packet, host, response.pack())

    def _handle_secure(self, packet: Packet, host: Host, payload: bytes) -> None:
        if self.keypair is None:
            raise DnsError("secure query received but resolver has no key pair")
        query_bytes, state = decrypt_query(self.keypair.private, payload, self._backend)
        query = DnsQuery.unpack(query_bytes)
        response = self._answer(query)
        self.queries_served += 1
        self.secure_queries_served += 1
        self._reply(packet, host, encrypt_response(state, response.pack(), self._backend))

    def _answer(self, query: DnsQuery) -> DnsResponse:
        try:
            records = self.zone.lookup(query.name, query.rtype)
        except NxDomainError:
            return DnsResponse.nxdomain(query.query_id)
        return DnsResponse.ok(query.query_id, records)

    def _reply(self, request: Packet, host: Host, payload: bytes) -> None:
        source_port = request.udp.source_port if request.udp is not None else DNS_PORT
        response_packet = udp_packet(
            host.address,
            request.source,
            payload,
            source_port=self.port,
            destination_port=source_port,
            dscp=request.dscp,
        )
        host.send_raw(response_packet)
