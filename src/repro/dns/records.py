"""DNS record types and wire encodings used by the bootstrap (§3.1).

The paper stores three things in a destination's DNS records: the
destination's IP address, its neutralizers' anycast addresses, and its public
key for end-to-end encryption.  We model them as three record types — ``A``,
``NEUT`` and ``KEY`` — plus ``NS`` for resolver discovery, and provide a
:class:`BootstrapInfo` bundle which is what the neutralizer client stack
actually consumes after a lookup.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional

from ..crypto.rsa import RsaPublicKey
from ..exceptions import DnsError
from ..packet.addresses import IPv4Address


class RecordType(IntEnum):
    """Supported DNS record types."""

    A = 1
    NS = 2
    KEY = 25
    #: Non-standard record carrying the neutralizer anycast addresses of the
    #: destination's provider(s) (one per provider for multi-homed sites, §3.5).
    NEUT = 65280


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record."""

    name: str
    rtype: RecordType
    data: bytes
    ttl: int = 3600

    def __post_init__(self) -> None:
        if not self.name or len(self.name) > 255:
            raise DnsError("record name must be 1..255 characters")
        if self.ttl < 0:
            raise DnsError("TTL cannot be negative")

    # -- typed constructors ---------------------------------------------------

    @classmethod
    def a(cls, name: str, address: IPv4Address, ttl: int = 3600) -> "ResourceRecord":
        """Build an A record."""
        return cls(name=name, rtype=RecordType.A, data=address.packed, ttl=ttl)

    @classmethod
    def key(cls, name: str, public_key: RsaPublicKey, ttl: int = 3600) -> "ResourceRecord":
        """Build a KEY record carrying the host's end-to-end public key."""
        return cls(name=name, rtype=RecordType.KEY, data=public_key.wire_bytes(), ttl=ttl)

    @classmethod
    def neut(
        cls, name: str, neutralizer_addresses: List[IPv4Address], ttl: int = 3600
    ) -> "ResourceRecord":
        """Build a NEUT record listing neutralizer anycast addresses."""
        if not neutralizer_addresses:
            raise DnsError("a NEUT record needs at least one address")
        data = struct.pack("!B", len(neutralizer_addresses)) + b"".join(
            address.packed for address in neutralizer_addresses
        )
        return cls(name=name, rtype=RecordType.NEUT, data=data, ttl=ttl)

    @classmethod
    def ns(cls, name: str, resolver_address: IPv4Address, ttl: int = 3600) -> "ResourceRecord":
        """Build an NS-like record pointing at a resolver address."""
        return cls(name=name, rtype=RecordType.NS, data=resolver_address.packed, ttl=ttl)

    # -- typed accessors ---------------------------------------------------------

    def as_address(self) -> IPv4Address:
        """Interpret the record data as a single IPv4 address (A / NS)."""
        if self.rtype not in (RecordType.A, RecordType.NS):
            raise DnsError(f"record type {self.rtype.name} does not carry one address")
        return IPv4Address.from_bytes(self.data)

    def as_public_key(self) -> RsaPublicKey:
        """Interpret the record data as an RSA public key (KEY)."""
        if self.rtype != RecordType.KEY:
            raise DnsError("not a KEY record")
        key, _consumed = RsaPublicKey.from_wire(self.data)
        return key

    def as_neutralizer_addresses(self) -> List[IPv4Address]:
        """Interpret the record data as a list of anycast addresses (NEUT)."""
        if self.rtype != RecordType.NEUT:
            raise DnsError("not a NEUT record")
        if not self.data:
            raise DnsError("empty NEUT record")
        count = self.data[0]
        expected = 1 + 4 * count
        if len(self.data) != expected:
            raise DnsError("malformed NEUT record")
        return [
            IPv4Address.from_bytes(self.data[1 + 4 * i:5 + 4 * i]) for i in range(count)
        ]

    # -- wire encoding -------------------------------------------------------------

    def pack(self) -> bytes:
        """Serialize for inclusion in a DNS response message."""
        name_bytes = self.name.encode("ascii")
        return (
            struct.pack("!B", len(name_bytes))
            + name_bytes
            + struct.pack("!HIH", int(self.rtype), self.ttl, len(self.data))
            + self.data
        )

    @classmethod
    def unpack(cls, data: bytes) -> tuple["ResourceRecord", int]:
        """Parse one record, returning it and the bytes consumed."""
        if len(data) < 1:
            raise DnsError("truncated record")
        name_len = data[0]
        header_len = 1 + name_len + 8
        if len(data) < header_len:
            raise DnsError("truncated record header")
        name = data[1:1 + name_len].decode("ascii")
        rtype, ttl, data_len = struct.unpack("!HIH", data[1 + name_len:header_len])
        total = header_len + data_len
        if len(data) < total:
            raise DnsError("truncated record data")
        return (
            cls(name=name, rtype=RecordType(rtype), data=data[header_len:total], ttl=ttl),
            total,
        )


@dataclass
class BootstrapInfo:
    """Everything a source needs before its first packet to a destination (§3.1)."""

    name: str
    address: Optional[IPv4Address] = None
    public_key: Optional[RsaPublicKey] = None
    neutralizer_addresses: List[IPv4Address] = field(default_factory=list)

    @property
    def is_neutralized(self) -> bool:
        """``True`` when the destination sits behind at least one neutralizer."""
        return bool(self.neutralizer_addresses)

    @property
    def is_complete(self) -> bool:
        """``True`` when the lookup produced at least an address."""
        return self.address is not None

    @classmethod
    def from_records(cls, name: str, records: List[ResourceRecord]) -> "BootstrapInfo":
        """Assemble bootstrap info from a record set."""
        info = cls(name=name)
        for record in records:
            if record.name != name:
                continue
            if record.rtype == RecordType.A and info.address is None:
                info.address = record.as_address()
            elif record.rtype == RecordType.KEY and info.public_key is None:
                info.public_key = record.as_public_key()
            elif record.rtype == RecordType.NEUT:
                info.neutralizer_addresses.extend(record.as_neutralizer_addresses())
        return info
