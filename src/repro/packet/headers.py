"""Wire-format headers: IPv4, UDP, and the generic shim container.

The paper assumes "each packet carries a standard IP header, and additional
fields needed by our design are carried in a shim layer between IP and an
upper layer.  The protocol field in an IP header is set to a fixed and known
value."  We model exactly that: a real 20-byte IPv4 header (with checksum), an
8-byte UDP header, and a generic shim container whose *body* formats are
defined by :mod:`repro.core.shim`.  Everything serializes to bytes so that
packet sizes in experiments (the 112-byte neutralized packet of §4) are
derived from actual encodings rather than constants.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Optional

from ..exceptions import HeaderError, TruncatedPacketError
from .addresses import IPv4Address
from .dscp import is_valid_dscp

# IP protocol numbers used by the simulator.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ESP = 50
#: The "fixed and known value" the paper assigns to the neutralizer shim layer.
PROTO_NEUTRALIZER_SHIM = 253
#: Protocol number used by the onion-routing baseline's encapsulation.
PROTO_ONION = 254

IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8
SHIM_FIXED_LEN = 4

DEFAULT_TTL = 64


def internet_checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum (used by the IPv4 header)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class IPv4Header:
    """A standard 20-byte IPv4 header (no options)."""

    source: IPv4Address
    destination: IPv4Address
    protocol: int = PROTO_UDP
    dscp: int = 0
    ecn: int = 0
    identification: int = 0
    ttl: int = DEFAULT_TTL
    total_length: int = IPV4_HEADER_LEN

    def __post_init__(self) -> None:
        if not is_valid_dscp(self.dscp):
            raise HeaderError(f"DSCP {self.dscp} does not fit 6 bits")
        if not 0 <= self.ecn <= 3:
            raise HeaderError(f"ECN {self.ecn} does not fit 2 bits")
        if not 0 <= self.protocol <= 255:
            raise HeaderError(f"protocol {self.protocol} out of range")
        if not 0 <= self.ttl <= 255:
            raise HeaderError(f"TTL {self.ttl} out of range")
        if not 0 <= self.identification <= 0xFFFF:
            raise HeaderError("identification field out of range")
        if not IPV4_HEADER_LEN <= self.total_length <= 0xFFFF:
            raise HeaderError(f"total length {self.total_length} out of range")

    def with_total_length(self, total_length: int) -> "IPv4Header":
        """Return a copy with the total-length field set (builder use)."""
        return replace(self, total_length=total_length)

    def with_addresses(
        self, source: Optional[IPv4Address] = None, destination: Optional[IPv4Address] = None
    ) -> "IPv4Header":
        """Return a copy with rewritten addresses (the neutralizer's main move)."""
        return replace(
            self,
            source=source if source is not None else self.source,
            destination=destination if destination is not None else self.destination,
        )

    def decremented_ttl(self) -> "IPv4Header":
        """Return a copy with TTL decreased by one (router forwarding)."""
        if self.ttl <= 0:
            raise HeaderError("TTL already zero")
        return replace(self, ttl=self.ttl - 1)

    def pack(self) -> bytes:
        """Serialize to 20 bytes with a correct header checksum."""
        version_ihl = (4 << 4) | 5
        tos = (self.dscp << 2) | self.ecn
        without_checksum = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            tos,
            self.total_length,
            self.identification,
            0,  # flags + fragment offset (fragmentation is not modelled)
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.source.packed,
            self.destination.packed,
        )
        checksum = internet_checksum(without_checksum)
        return without_checksum[:10] + struct.pack("!H", checksum) + without_checksum[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        """Parse a 20-byte header, verifying version and checksum."""
        if len(data) < IPV4_HEADER_LEN:
            raise TruncatedPacketError("buffer shorter than an IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            _flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:IPV4_HEADER_LEN])
        if version_ihl >> 4 != 4:
            raise HeaderError("not an IPv4 packet")
        if version_ihl & 0x0F != 5:
            raise HeaderError("IPv4 options are not supported")
        if internet_checksum(data[:IPV4_HEADER_LEN]) != 0:
            raise HeaderError("IPv4 header checksum mismatch")
        return cls(
            source=IPv4Address.from_bytes(src),
            destination=IPv4Address.from_bytes(dst),
            protocol=protocol,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            identification=identification,
            ttl=ttl,
            total_length=total_length,
        )


@dataclass(frozen=True)
class UdpHeader:
    """A standard 8-byte UDP header (checksum kept but not validated)."""

    source_port: int
    destination_port: int
    length: int = UDP_HEADER_LEN
    checksum: int = 0

    def __post_init__(self) -> None:
        for port in (self.source_port, self.destination_port):
            if not 0 <= port <= 0xFFFF:
                raise HeaderError(f"port {port} out of range")
        if not UDP_HEADER_LEN <= self.length <= 0xFFFF:
            raise HeaderError(f"UDP length {self.length} out of range")

    def with_length(self, length: int) -> "UdpHeader":
        """Return a copy with the length field set."""
        return replace(self, length=length)

    def pack(self) -> bytes:
        """Serialize to 8 bytes."""
        return struct.pack(
            "!HHHH", self.source_port, self.destination_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        """Parse an 8-byte UDP header."""
        if len(data) < UDP_HEADER_LEN:
            raise TruncatedPacketError("buffer shorter than a UDP header")
        sport, dport, length, checksum = struct.unpack("!HHHH", data[:UDP_HEADER_LEN])
        return cls(sport, dport, length, checksum)


# Shim types carried in the generic container.  The core package interprets
# the bodies; the packet layer only frames them.
SHIM_TYPE_KEY_SETUP_REQUEST = 1
SHIM_TYPE_KEY_SETUP_RESPONSE = 2
SHIM_TYPE_NEUTRALIZED_DATA = 3
SHIM_TYPE_RETURN_DATA = 4
SHIM_TYPE_REVERSE_KEY_REQUEST = 5
SHIM_TYPE_ONION = 6


@dataclass(frozen=True)
class ShimHeader:
    """The shim layer between IP and the upper layer.

    Wire format: 1 byte shim type, 1 byte next protocol, 2 bytes body length,
    then the opaque body.  The IP protocol field is set to
    :data:`PROTO_NEUTRALIZER_SHIM` whenever a shim is present.
    """

    shim_type: int
    next_protocol: int
    body: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if not 0 <= self.shim_type <= 255:
            raise HeaderError("shim type out of range")
        if not 0 <= self.next_protocol <= 255:
            raise HeaderError("next protocol out of range")
        if len(self.body) > 0xFFFF:
            raise HeaderError("shim body too long")

    @property
    def length(self) -> int:
        """Total serialized length of the shim (fixed part + body)."""
        return SHIM_FIXED_LEN + len(self.body)

    def pack(self) -> bytes:
        """Serialize the shim header and body."""
        return struct.pack("!BBH", self.shim_type, self.next_protocol, len(self.body)) + self.body

    @classmethod
    def unpack(cls, data: bytes) -> "ShimHeader":
        """Parse a shim header; raises if the body is truncated."""
        if len(data) < SHIM_FIXED_LEN:
            raise TruncatedPacketError("buffer shorter than a shim header")
        shim_type, next_protocol, body_len = struct.unpack("!BBH", data[:SHIM_FIXED_LEN])
        if len(data) < SHIM_FIXED_LEN + body_len:
            raise TruncatedPacketError("shim body truncated")
        return cls(shim_type, next_protocol, data[SHIM_FIXED_LEN:SHIM_FIXED_LEN + body_len])
