"""Differentiated Services Code Points (RFC 2474 / RFC 2475).

Section 3.4 of the paper is explicit that the neutralizer "will not modify the
Differentiated Services Code Point (DSCP) in a standard IP header", so a
discriminatory ISP can keep selling tiered service to its own customers even
when the traffic is neutralized.  The QoS substrate maps these code points to
per-hop behaviours; the property tests assert the neutralizer's DSCP
passthrough invariant.
"""

from __future__ import annotations

from enum import IntEnum


class Dscp(IntEnum):
    """Standard DSCP values (6-bit field)."""

    BEST_EFFORT = 0
    CS1 = 8
    AF11 = 10
    AF12 = 12
    AF13 = 14
    CS2 = 16
    AF21 = 18
    AF22 = 20
    AF23 = 22
    CS3 = 24
    AF31 = 26
    AF32 = 28
    AF33 = 30
    CS4 = 32
    AF41 = 34
    AF42 = 36
    AF43 = 38
    CS5 = 40
    EF = 46
    CS6 = 48
    CS7 = 56


#: Coarse service classes used by the QoS schedulers and experiment reports.
SERVICE_CLASSES = {
    "voice": Dscp.EF,
    "video": Dscp.AF41,
    "priority-data": Dscp.AF21,
    "best-effort": Dscp.BEST_EFFORT,
    "scavenger": Dscp.CS1,
}

#: Scheduling priority of each DSCP (higher = served first by the priority
#: scheduler).  Values follow the usual EF > AF4x > AF2x > BE > CS1 ordering.
_PRIORITY_ORDER = {
    Dscp.EF: 5,
    Dscp.CS5: 5,
    Dscp.AF41: 4,
    Dscp.AF42: 4,
    Dscp.AF43: 4,
    Dscp.CS4: 4,
    Dscp.AF31: 3,
    Dscp.AF32: 3,
    Dscp.AF33: 3,
    Dscp.CS3: 3,
    Dscp.AF21: 2,
    Dscp.AF22: 2,
    Dscp.AF23: 2,
    Dscp.CS2: 2,
    Dscp.AF11: 1,
    Dscp.AF12: 1,
    Dscp.AF13: 1,
    Dscp.BEST_EFFORT: 1,
    Dscp.CS1: 0,
    Dscp.CS6: 5,
    Dscp.CS7: 5,
}


def priority_of(dscp: int) -> int:
    """Return the scheduling priority of a DSCP value (unknown values = BE)."""
    try:
        return _PRIORITY_ORDER[Dscp(dscp)]
    except ValueError:
        return _PRIORITY_ORDER[Dscp.BEST_EFFORT]


def class_of(dscp: int) -> str:
    """Return the coarse service-class name of a DSCP value."""
    for name, value in SERVICE_CLASSES.items():
        if value == dscp:
            return name
    priority = priority_of(dscp)
    if priority >= 4:
        return "video"
    if priority >= 2:
        return "priority-data"
    if priority == 0:
        return "scavenger"
    return "best-effort"


def is_valid_dscp(value: int) -> bool:
    """Return ``True`` if ``value`` fits the 6-bit DSCP field."""
    return 0 <= value < 64
