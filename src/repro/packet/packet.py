"""The simulator's packet object.

A :class:`Packet` bundles an IPv4 header, an optional shim header, an optional
UDP header and an opaque payload, plus simulation metadata (creation time,
flow id, hop trace) that never appears on the wire.  ``serialize`` /
``deserialize`` produce real byte encodings so that sizes reported by the
benchmarks are honest, while the simulator itself passes the object around to
avoid re-parsing at every hop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..exceptions import HeaderError, TruncatedPacketError
from .addresses import IPv4Address
from .headers import (
    IPV4_HEADER_LEN,
    PROTO_NEUTRALIZER_SHIM,
    PROTO_UDP,
    UDP_HEADER_LEN,
    IPv4Header,
    ShimHeader,
    UdpHeader,
)

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A packet travelling through the simulated internetwork."""

    ip: IPv4Header
    shim: Optional[ShimHeader] = None
    udp: Optional[UdpHeader] = None
    payload: bytes = b""
    #: Simulation-only metadata (not serialized): flow ids, app tags, etc.
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Names of nodes traversed; filled in by routers for path assertions.
    hops: List[str] = field(default_factory=list)
    #: Unique id for tracing.
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Simulation timestamp at creation (set by senders).
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.shim is not None and self.ip.protocol != PROTO_NEUTRALIZER_SHIM:
            # Normalize: the presence of a shim implies the fixed protocol value.
            self.ip = self.ip.with_total_length(self.ip.total_length)
        self._sync_lengths()

    # -- size accounting -----------------------------------------------------

    def _sync_lengths(self) -> None:
        """Recompute length fields from the actual component sizes."""
        udp_len = UDP_HEADER_LEN + len(self.payload) if self.udp is not None else 0
        if self.udp is not None:
            self.udp = self.udp.with_length(udp_len)
        shim_len = self.shim.length if self.shim is not None else 0
        payload_len = len(self.payload) if self.udp is None else 0
        total = IPV4_HEADER_LEN + shim_len + udp_len + payload_len
        self.ip = self.ip.with_total_length(total)

    @property
    def size_bytes(self) -> int:
        """On-the-wire size of the packet in bytes."""
        self._sync_lengths()
        return self.ip.total_length

    @property
    def source(self) -> IPv4Address:
        """Source address in the IP header (what a middlebox can see)."""
        return self.ip.source

    @property
    def destination(self) -> IPv4Address:
        """Destination address in the IP header (what a middlebox can see)."""
        return self.ip.destination

    @property
    def dscp(self) -> int:
        """DSCP field (preserved by the neutralizer, §3.4)."""
        return self.ip.dscp

    @property
    def flow_id(self) -> Optional[str]:
        """Simulation flow tag, if any."""
        return self.meta.get("flow_id")

    # -- mutation helpers ------------------------------------------------------

    def record_hop(self, node_name: str) -> None:
        """Append a node to the hop trace."""
        self.hops.append(node_name)

    def copy(self) -> "Packet":
        """Deep-enough copy for fan-out middleboxes (headers are immutable)."""
        return Packet(
            ip=self.ip,
            shim=self.shim,
            udp=self.udp,
            payload=self.payload,
            meta=dict(self.meta),
            hops=list(self.hops),
            created_at=self.created_at,
        )

    def replace_ip(self, **kwargs: Any) -> "Packet":
        """Return a copy of this packet with IP header fields replaced.

        The neutralizer uses this for its address swap; everything else
        (shim, payload, metadata) is carried over untouched.
        """
        new = self.copy()
        source = kwargs.pop("source", None)
        destination = kwargs.pop("destination", None)
        header = new.ip.with_addresses(source=source, destination=destination)
        for key, value in kwargs.items():
            header = type(header)(**{**header.__dict__, key: value})
        new.ip = header
        new._sync_lengths()
        return new

    def with_shim(self, shim: ShimHeader) -> "Packet":
        """Return a copy carrying ``shim`` and the fixed shim protocol number."""
        new = self.copy()
        new.shim = shim
        new.ip = IPv4Header(
            source=new.ip.source,
            destination=new.ip.destination,
            protocol=PROTO_NEUTRALIZER_SHIM,
            dscp=new.ip.dscp,
            ecn=new.ip.ecn,
            identification=new.ip.identification,
            ttl=new.ip.ttl,
        )
        new._sync_lengths()
        return new

    def without_shim(self, next_protocol: Optional[int] = None) -> "Packet":
        """Return a copy with the shim removed (used at the receiving host)."""
        new = self.copy()
        protocol = next_protocol
        if protocol is None:
            protocol = new.shim.next_protocol if new.shim is not None else PROTO_UDP
        new.shim = None
        new.ip = IPv4Header(
            source=new.ip.source,
            destination=new.ip.destination,
            protocol=protocol,
            dscp=new.ip.dscp,
            ecn=new.ip.ecn,
            identification=new.ip.identification,
            ttl=new.ip.ttl,
        )
        new._sync_lengths()
        return new

    # -- serialization ---------------------------------------------------------

    def serialize(self) -> bytes:
        """Encode the packet to its on-the-wire byte representation."""
        self._sync_lengths()
        parts = [self.ip.pack()]
        if self.shim is not None:
            parts.append(self.shim.pack())
        if self.udp is not None:
            parts.append(self.udp.pack())
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, data: bytes) -> "Packet":
        """Parse bytes produced by :meth:`serialize`."""
        ip_header = IPv4Header.unpack(data)
        if len(data) < ip_header.total_length:
            raise TruncatedPacketError("buffer shorter than IP total length")
        offset = IPV4_HEADER_LEN
        shim = None
        udp = None
        next_protocol = ip_header.protocol
        if ip_header.protocol == PROTO_NEUTRALIZER_SHIM:
            shim = ShimHeader.unpack(data[offset:])
            offset += shim.length
            next_protocol = shim.next_protocol
        if next_protocol == PROTO_UDP and offset + UDP_HEADER_LEN <= ip_header.total_length:
            udp = UdpHeader.unpack(data[offset:])
            offset += UDP_HEADER_LEN
        payload = data[offset:ip_header.total_length]
        packet = cls(ip=ip_header, shim=shim, udp=udp, payload=payload)
        # Deserialization must not "fix up" a header that lied about lengths.
        if packet.size_bytes != ip_header.total_length:
            raise HeaderError(
                f"inconsistent lengths: header says {ip_header.total_length}, "
                f"components say {packet.size_bytes}"
            )
        return packet

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shim_part = f" shim={self.shim.shim_type}" if self.shim else ""
        return (
            f"<Packet #{self.packet_id} {self.source}->{self.destination} "
            f"proto={self.ip.protocol}{shim_part} {self.size_bytes}B>"
        )
