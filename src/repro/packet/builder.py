"""Convenience constructors for common packet shapes.

Experiment scripts and tests build the same handful of packets over and over:
plain UDP datagrams, DSCP-marked datagrams, and shim-carrying packets.  These
helpers keep those call sites short and consistent; they are deliberately thin
wrappers with no hidden behaviour.
"""

from __future__ import annotations

from typing import Optional

from .addresses import IPv4Address
from .dscp import Dscp
from .headers import IPv4Header, PROTO_ESP, PROTO_UDP, ShimHeader, UdpHeader
from .packet import Packet


def udp_packet(
    source: IPv4Address,
    destination: IPv4Address,
    payload: bytes = b"",
    *,
    source_port: int = 40000,
    destination_port: int = 40000,
    dscp: int = int(Dscp.BEST_EFFORT),
    ttl: int = 64,
    flow_id: Optional[str] = None,
) -> Packet:
    """Build a plain UDP packet."""
    packet = Packet(
        ip=IPv4Header(
            source=source,
            destination=destination,
            protocol=PROTO_UDP,
            dscp=dscp,
            ttl=ttl,
        ),
        udp=UdpHeader(source_port=source_port, destination_port=destination_port),
        payload=payload,
    )
    if flow_id is not None:
        packet.meta["flow_id"] = flow_id
    return packet


def esp_packet(
    source: IPv4Address,
    destination: IPv4Address,
    encrypted_payload: bytes,
    *,
    dscp: int = int(Dscp.BEST_EFFORT),
    ttl: int = 64,
    flow_id: Optional[str] = None,
) -> Packet:
    """Build an end-to-end encrypted (ESP-like) packet without a shim."""
    packet = Packet(
        ip=IPv4Header(
            source=source,
            destination=destination,
            protocol=PROTO_ESP,
            dscp=dscp,
            ttl=ttl,
        ),
        payload=encrypted_payload,
    )
    if flow_id is not None:
        packet.meta["flow_id"] = flow_id
    return packet


def shim_packet(
    source: IPv4Address,
    destination: IPv4Address,
    shim: ShimHeader,
    payload: bytes = b"",
    *,
    dscp: int = int(Dscp.BEST_EFFORT),
    ttl: int = 64,
    flow_id: Optional[str] = None,
) -> Packet:
    """Build a packet carrying a shim header (the neutralizer's wire format)."""
    base = Packet(
        ip=IPv4Header(source=source, destination=destination, dscp=dscp, ttl=ttl),
        payload=payload,
    )
    packet = base.with_shim(shim)
    if flow_id is not None:
        packet.meta["flow_id"] = flow_id
    return packet
