"""IPv4 addresses, prefixes, anycast groups and address allocation.

The neutralizer design is entirely about *which addresses are visible where*:
customers of the neutral ISP hide behind the neutralizer's **anycast**
address, and the discriminatory ISP can only key its policies on addresses it
can still see.  This module provides a compact address model tailored to the
simulator: addresses are small immutable wrappers over integers, prefixes
support containment tests (used by ISPs to recognize their own customers),
anycast groups name a service address shared by several boxes, and allocators
hand out host addresses inside an ISP's prefix deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from ..exceptions import AddressError

_MAX_IPV4 = (1 << 32) - 1


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An immutable IPv4 address.

    Stored as an integer; hashable so it can key forwarding tables, DNS zones
    and the neutralizer's (absent) per-source state in baseline comparisons.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_IPV4:
            raise AddressError(f"address value {self.value} out of IPv4 range")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse a dotted-quad string."""
        return cls(_parse_dotted_quad(text))

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        """Build an address from 4 packed bytes (network byte order)."""
        if len(data) != 4:
            raise AddressError(f"packed IPv4 address must be 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @property
    def packed(self) -> bytes:
        """The 4-byte network-order representation."""
        return self.value.to_bytes(4, "big")

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF) for shift in (24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


def ip(text: str) -> IPv4Address:
    """Shorthand constructor used throughout tests and examples."""
    return IPv4Address.parse(text)


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix (network address + mask length)."""

    network: IPv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length {self.length} out of range")
        if self.network.value & ~self._mask():
            raise AddressError(
                f"network {self.network} has host bits set for /{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse CIDR notation such as ``10.1.0.0/16``."""
        if "/" not in text:
            raise AddressError(f"prefix {text!r} missing mask length")
        network_text, _, length_text = text.partition("/")
        if not length_text.isdigit():
            raise AddressError(f"malformed prefix length in {text!r}")
        return cls(IPv4Address.parse(network_text), int(length_text))

    def _mask(self) -> int:
        if self.length == 0:
            return 0
        return (_MAX_IPV4 << (32 - self.length)) & _MAX_IPV4

    def contains(self, address: IPv4Address) -> bool:
        """Return ``True`` if ``address`` falls inside this prefix."""
        return (address.value & self._mask()) == self.network.value

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def host(self, index: int) -> IPv4Address:
        """Return the ``index``-th host address inside the prefix (1-based usable)."""
        if not 0 < index < self.size:
            raise AddressError(f"host index {index} out of range for /{self.length}")
        return IPv4Address(self.network.value + index)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __iter__(self) -> Iterator[IPv4Address]:
        for offset in range(self.size):
            yield IPv4Address(self.network.value + offset)


def prefix(text: str) -> Prefix:
    """Shorthand constructor for prefixes."""
    return Prefix.parse(text)


@dataclass
class AddressAllocator:
    """Deterministic sequential allocator of host addresses inside a prefix.

    Each ISP owns one allocator so that building the same topology twice
    yields identical addressing — a requirement for replayable experiments.
    """

    prefix: Prefix
    _next_index: int = field(default=1, init=False)

    def allocate(self) -> IPv4Address:
        """Return the next unused host address."""
        if self._next_index >= self.prefix.size - 1:
            raise AddressError(f"prefix {self.prefix} exhausted")
        address = self.prefix.host(self._next_index)
        self._next_index += 1
        return address

    def allocate_many(self, count: int) -> List[IPv4Address]:
        """Allocate ``count`` consecutive addresses."""
        return [self.allocate() for _ in range(count)]

    @property
    def allocated_count(self) -> int:
        """Number of addresses handed out so far."""
        return self._next_index - 1


@dataclass(frozen=True)
class AnycastAddress:
    """An anycast service address.

    The paper uses one anycast address per neutral ISP: "We use an anycast
    address to represent the neutralizer service of an ISP.  All customers of
    an ISP use the same neutralizer address, regardless of where they are
    located."  Routing delivers packets for this address to the *nearest*
    member of the group (see :mod:`repro.netsim.routing`).
    """

    address: IPv4Address
    service: str = "neutralizer"

    def __str__(self) -> str:
        return f"{self.address} (anycast:{self.service})"


class AnycastGroup:
    """The set of nodes that answer for one anycast address."""

    def __init__(self, anycast: AnycastAddress) -> None:
        self.anycast = anycast
        self._members: List[str] = []

    @property
    def address(self) -> IPv4Address:
        """The shared anycast address."""
        return self.anycast.address

    @property
    def members(self) -> List[str]:
        """Names of member nodes (stable insertion order)."""
        return list(self._members)

    def add_member(self, node_name: str) -> None:
        """Register a node as answering for the anycast address."""
        if node_name not in self._members:
            self._members.append(node_name)

    def remove_member(self, node_name: str) -> None:
        """Withdraw a node from the group (e.g. simulated failure)."""
        if node_name in self._members:
            self._members.remove(node_name)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_name: str) -> bool:
        return node_name in self._members


#: Well-known blocks used by the built-in topologies.  Keeping them here makes
#: example scripts and tests read like the paper's Figure 1.
WELL_KNOWN_BLOCKS = {
    "att": Prefix.parse("10.1.0.0/16"),
    "verizon": Prefix.parse("10.2.0.0/16"),
    "cogent": Prefix.parse("10.3.0.0/16"),
    "transit": Prefix.parse("10.9.0.0/16"),
    "anycast": Prefix.parse("10.200.0.0/24"),
}


def allocator_for(name: str) -> AddressAllocator:
    """Return a fresh allocator for one of the well-known blocks."""
    if name not in WELL_KNOWN_BLOCKS:
        raise AddressError(f"unknown well-known block {name!r}")
    return AddressAllocator(WELL_KNOWN_BLOCKS[name])


def is_anycast_address(address: IPv4Address, groups: Optional[list] = None) -> bool:
    """Return ``True`` if ``address`` belongs to the reserved anycast block."""
    return WELL_KNOWN_BLOCKS["anycast"].contains(address)
