"""Constant-bit-rate video streaming model.

The §1 debate is driven by "increasingly popular video and audio
applications"; experiments use this model as the bandwidth-hungry class that a
discriminatory ISP might throttle and a neutral ISP might sell a premium tier
for.  The stream is a paced sequence of fixed-size segments; the receiver
tracks delivered throughput and a simple rebuffering proxy (segments arriving
later than their playout deadline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import WorkloadError
from ..netsim.node import Host
from ..packet.addresses import IPv4Address
from ..packet.builder import udp_packet
from ..packet.dscp import Dscp
from ..packet.packet import Packet

DEFAULT_VIDEO_PORT = 8554


@dataclass
class VideoQualityReport:
    """Received-stream quality of one video session."""

    segments_sent: int
    segments_received: int
    late_segments: int
    achieved_bitrate_bps: float
    nominal_bitrate_bps: float

    @property
    def loss_rate(self) -> float:
        """Fraction of segments that never arrived."""
        if self.segments_sent == 0:
            return 0.0
        return 1.0 - self.segments_received / self.segments_sent

    @property
    def rebuffer_ratio(self) -> float:
        """Fraction of received segments that missed their playout deadline."""
        if self.segments_received == 0:
            return 0.0
        return self.late_segments / self.segments_received

    @property
    def is_watchable(self) -> bool:
        """Rule of thumb: under 2 % loss and under 5 % late segments."""
        return self.loss_rate < 0.02 and self.rebuffer_ratio < 0.05


class VideoReceiver:
    """Receives a video stream and tracks deadlines."""

    def __init__(self, host: Host, *, port: int = DEFAULT_VIDEO_PORT,
                 playout_deadline_seconds: float = 0.25) -> None:
        self.host = host
        self.port = port
        self.playout_deadline_seconds = playout_deadline_seconds
        self.segments_received = 0
        self.bytes_received = 0
        self.late_segments = 0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None
        host.register_port_handler(port, self._handle)

    def _handle(self, packet: Packet, host: Host) -> None:
        self.segments_received += 1
        self.bytes_received += len(packet.payload)
        now = host.sim.now
        if self.first_arrival is None:
            self.first_arrival = now
        self.last_arrival = now
        sent_at = packet.meta.get("video_sent_at")
        if sent_at is not None and now - sent_at > self.playout_deadline_seconds:
            self.late_segments += 1


class VideoStream:
    """One CBR video session from a server host toward a viewer."""

    def __init__(
        self,
        server: Host,
        viewer_address: IPv4Address,
        receiver: VideoReceiver,
        *,
        bitrate_bps: float = 2_000_000.0,
        segment_bytes: int = 1200,
        duration_seconds: float = 5.0,
        dscp: int = int(Dscp.AF41),
        port: int = DEFAULT_VIDEO_PORT,
        name: str = "video",
    ) -> None:
        if bitrate_bps <= 0 or segment_bytes <= 0 or duration_seconds <= 0:
            raise WorkloadError("bitrate, segment size and duration must be positive")
        self.server = server
        self.viewer_address = viewer_address
        self.receiver = receiver
        self.bitrate_bps = bitrate_bps
        self.segment_bytes = segment_bytes
        self.duration_seconds = duration_seconds
        self.dscp = dscp
        self.port = port
        self.name = name
        self.segments_sent = 0

    @property
    def segment_interval(self) -> float:
        """Seconds between segments at the nominal bitrate."""
        return (self.segment_bytes * 8) / self.bitrate_bps

    @property
    def total_segments(self) -> int:
        """Segments needed to cover the configured duration."""
        return max(1, int(self.duration_seconds / self.segment_interval))

    def start(self, delay: float = 0.0) -> None:
        """Schedule the whole stream."""
        for index in range(self.total_segments):
            self.server.sim.schedule(delay + index * self.segment_interval, self._send_one, index)

    def _send_one(self, index: int) -> None:
        payload = b"#VIDEO" + index.to_bytes(4, "big")
        payload += b"v" * (self.segment_bytes - len(payload))
        packet = udp_packet(
            self.server.address,
            self.viewer_address,
            payload,
            source_port=self.port,
            destination_port=self.port,
            dscp=self.dscp,
            flow_id=self.name,
        )
        packet.meta["video_sent_at"] = self.server.sim.now
        self.server.send(packet)
        self.segments_sent += 1

    def report(self) -> VideoQualityReport:
        """Quality report for the viewer side."""
        elapsed = 0.0
        if self.receiver.first_arrival is not None and self.receiver.last_arrival is not None:
            elapsed = max(self.receiver.last_arrival - self.receiver.first_arrival, 1e-9)
        achieved = (self.receiver.bytes_received * 8) / elapsed if elapsed > 0 else 0.0
        return VideoQualityReport(
            segments_sent=self.segments_sent,
            segments_received=self.receiver.segments_received,
            late_segments=self.receiver.late_segments,
            achieved_bitrate_bps=achieved,
            nominal_bitrate_bps=self.bitrate_bps,
        )
