"""A minimal request/response web transfer model.

Used by experiments that need a second application class next to VoIP: a
client sends a small request, the server answers with a multi-packet response,
and the metric is page completion time.  The model is UDP-based (the simulator
has no TCP) but paces the response to a configured burst rate so queueing and
discrimination effects still show up in completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import WorkloadError
from ..netsim.node import Host
from ..packet.addresses import IPv4Address
from ..packet.builder import udp_packet
from ..packet.packet import Packet

DEFAULT_WEB_PORT = 80
_RESPONSE_PACKET_BYTES = 1200


@dataclass
class WebTransferResult:
    """Outcome of one web transfer."""

    requested_bytes: int
    received_bytes: int
    started_at: float
    completed_at: Optional[float]

    @property
    def complete(self) -> bool:
        """``True`` when every byte arrived."""
        return self.completed_at is not None

    @property
    def completion_seconds(self) -> float:
        """Page load time (inf when the transfer never completed)."""
        if self.completed_at is None:
            return float("inf")
        return self.completed_at - self.started_at


class WebServer:
    """Answers GET-like requests with a paced stream of response packets."""

    def __init__(
        self,
        host: Host,
        *,
        port: int = DEFAULT_WEB_PORT,
        response_bytes: int = 100_000,
        packets_per_second: float = 500.0,
    ) -> None:
        if response_bytes <= 0 or packets_per_second <= 0:
            raise WorkloadError("response size and pacing rate must be positive")
        self.host = host
        self.port = port
        self.response_bytes = response_bytes
        self.packets_per_second = packets_per_second
        self.requests_served = 0
        host.register_port_handler(port, self._handle_request)

    def _handle_request(self, packet: Packet, host: Host) -> None:
        self.requests_served += 1
        total_packets = max(1, (self.response_bytes + _RESPONSE_PACKET_BYTES - 1)
                            // _RESPONSE_PACKET_BYTES)
        interval = 1.0 / self.packets_per_second
        client_port = packet.udp.source_port if packet.udp is not None else self.port
        for index in range(total_packets):
            size = min(_RESPONSE_PACKET_BYTES, self.response_bytes - index * _RESPONSE_PACKET_BYTES)
            host.sim.schedule(
                index * interval,
                self._send_chunk,
                packet.source,
                client_port,
                index,
                total_packets,
                size,
                packet.dscp,
            )

    def _send_chunk(self, client: IPv4Address, client_port: int, index: int,
                    total: int, size: int, dscp: int) -> None:
        payload = b"HTTP/1.1 200 OK " + index.to_bytes(4, "big") + total.to_bytes(4, "big")
        payload = payload + b"x" * max(0, size - len(payload))
        response = udp_packet(
            self.host.address,
            client,
            payload,
            source_port=self.port,
            destination_port=client_port,
            dscp=dscp,
        )
        self.host.send(response)


class WebClient:
    """Issues requests and measures completion time."""

    def __init__(self, host: Host, *, port: int = 40080) -> None:
        self.host = host
        self.port = port
        self._transfers: Dict[IPv4Address, WebTransferResult] = {}
        self._expected: Dict[IPv4Address, int] = {}
        host.register_port_handler(port, self._handle_response)

    def request(self, server_address: IPv4Address, *, expected_bytes: int,
                server_port: int = DEFAULT_WEB_PORT, dscp: int = 0) -> None:
        """Send one request toward ``server_address``."""
        self._transfers[server_address] = WebTransferResult(
            requested_bytes=expected_bytes,
            received_bytes=0,
            started_at=self.host.sim.now,
            completed_at=None,
        )
        self._expected[server_address] = expected_bytes
        request = udp_packet(
            self.host.address,
            server_address,
            b"GET / HTTP/1.1",
            source_port=self.port,
            destination_port=server_port,
            dscp=dscp,
        )
        self.host.send(request)

    def _handle_response(self, packet: Packet, host: Host) -> None:
        result = self._transfers.get(packet.source)
        if result is None:
            return
        result.received_bytes += len(packet.payload)
        if result.completed_at is None and result.received_bytes >= result.requested_bytes:
            result.completed_at = host.sim.now

    def result_for(self, server_address: IPv4Address) -> WebTransferResult:
        """Return the transfer result for one server."""
        if server_address not in self._transfers:
            raise WorkloadError(f"no transfer was started toward {server_address}")
        return self._transfers[server_address]
