"""Synthetic traffic generators: background load, key-setup floods, probe trains.

These are the paper's missing "production traces": the evaluation ran
synthetic UDP streams through a testbed, so the simulator equivalents are
constant-rate and Poisson packet sources plus the key-setup flood used by the
DoS experiments (E8, E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..crypto.rsa import generate_keypair
from ..exceptions import WorkloadError
from ..netsim.node import Host
from ..packet.addresses import IPv4Address
from ..packet.builder import udp_packet
from ..packet.headers import IPv4Header, PROTO_NEUTRALIZER_SHIM
from ..packet.packet import Packet
from ..core.shim import KeySetupRequestBody


class ConstantRateSource:
    """Sends fixed-size UDP packets at a fixed rate from one host."""

    def __init__(
        self,
        host: Host,
        destination: IPv4Address,
        *,
        packets_per_second: float,
        payload_bytes: int = 1000,
        destination_port: int = 40000,
        dscp: int = 0,
        flow_id: Optional[str] = None,
    ) -> None:
        if packets_per_second <= 0 or payload_bytes < 0:
            raise WorkloadError("rate must be positive and payload non-negative")
        self.host = host
        self.destination = destination
        self.packets_per_second = packets_per_second
        self.payload_bytes = payload_bytes
        self.destination_port = destination_port
        self.dscp = dscp
        self.flow_id = flow_id
        self.packets_sent = 0

    def start(self, duration_seconds: float, delay: float = 0.0) -> int:
        """Schedule the packet train; returns the number of packets scheduled."""
        interval = 1.0 / self.packets_per_second
        count = int(duration_seconds * self.packets_per_second)
        for index in range(count):
            self.host.sim.schedule(delay + index * interval, self._send_one)
        return count

    def _send_one(self) -> None:
        packet = udp_packet(
            self.host.address,
            self.destination,
            b"b" * self.payload_bytes,
            destination_port=self.destination_port,
            dscp=self.dscp,
            flow_id=self.flow_id,
        )
        self.host.send(packet)
        self.packets_sent += 1


class PoissonSource(ConstantRateSource):
    """Same as :class:`ConstantRateSource` but with exponential inter-arrivals."""

    def __init__(self, *args, rng: Optional[RandomSource] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = rng or DEFAULT_SOURCE

    def start(self, duration_seconds: float, delay: float = 0.0) -> int:
        elapsed = 0.0
        count = 0
        while True:
            elapsed += self._rng.expovariate(self.packets_per_second)
            if elapsed > duration_seconds:
                break
            self.host.sim.schedule(delay + elapsed, self._send_one)
            count += 1
        return count


class KeySetupFlood:
    """An attacker flooding a neutralizer with key-setup requests (E8/E11).

    Each request carries a syntactically valid one-time public key so the
    neutralizer (or its offload helper) must spend a real RSA encryption per
    packet unless a defense intervenes.  A small pool of keys is pre-generated
    and reused: the *victim's* cost is identical, and the attacker is assumed
    to be resource-rich anyway.
    """

    def __init__(
        self,
        attacker: Host,
        neutralizer_address: IPv4Address,
        *,
        requests_per_second: float = 500.0,
        key_pool_size: int = 4,
        key_bits: int = 512,
        rng: Optional[RandomSource] = None,
        spoof_prefix=None,
    ) -> None:
        if requests_per_second <= 0:
            raise WorkloadError("flood rate must be positive")
        self.attacker = attacker
        self.neutralizer_address = neutralizer_address
        self.requests_per_second = requests_per_second
        self._rng = rng or DEFAULT_SOURCE
        self._spoof_prefix = spoof_prefix
        self._keys = [generate_keypair(key_bits, self._rng).public for _ in range(key_pool_size)]
        self.requests_sent = 0

    def start(self, duration_seconds: float, delay: float = 0.0) -> int:
        """Schedule the flood; returns the number of requests scheduled."""
        interval = 1.0 / self.requests_per_second
        count = int(duration_seconds * self.requests_per_second)
        for index in range(count):
            self.attacker.sim.schedule(delay + index * interval, self._send_one, index)
        return count

    def _send_one(self, index: int) -> None:
        body = KeySetupRequestBody(public_key=self._keys[index % len(self._keys)])
        source = self.attacker.address
        if self._spoof_prefix is not None:
            # Spoof within a prefix: pushback must work without trusting sources.
            offset = 1 + (index % max(1, self._spoof_prefix.size - 2))
            source = self._spoof_prefix.host(offset)
        packet = Packet(
            ip=IPv4Header(
                source=source,
                destination=self.neutralizer_address,
                protocol=PROTO_NEUTRALIZER_SHIM,
            ),
            shim=body.to_shim(),
        )
        self.attacker.send_raw(packet)
        self.requests_sent += 1


@dataclass
class TrafficMix:
    """A named bundle of sources started together (used by scenario builders)."""

    name: str
    sources: List[object]

    def start_all(self, duration_seconds: float, delay: float = 0.0) -> Dict[str, int]:
        """Start every source; returns scheduled packet counts per source index."""
        return {
            f"{self.name}[{index}]": source.start(duration_seconds, delay)
            for index, source in enumerate(self.sources)
        }
