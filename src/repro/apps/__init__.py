"""Application models and workload generators used by the experiments."""

from .video import VideoQualityReport, VideoReceiver, VideoStream
from .voip import (
    DEFAULT_VOIP_PORT,
    VoipCall,
    VoipQualityReport,
    VoipReceiver,
    run_call,
)
from .web import WebClient, WebServer, WebTransferResult
from .workloads import ConstantRateSource, KeySetupFlood, PoissonSource, TrafficMix

__all__ = [
    "VideoQualityReport",
    "VideoReceiver",
    "VideoStream",
    "DEFAULT_VOIP_PORT",
    "VoipCall",
    "VoipQualityReport",
    "VoipReceiver",
    "run_call",
    "WebClient",
    "WebServer",
    "WebTransferResult",
    "ConstantRateSource",
    "KeySetupFlood",
    "PoissonSource",
    "TrafficMix",
]
