"""VoIP application model with an E-model MOS score.

The paper's motivating scenario (§1) is a broadband ISP degrading Vonage-style
VoIP while favouring its own offering.  To make "degraded" measurable the
reproduction models a VoIP call as a constant-rate RTP-like stream and scores
the received stream with the ITU-T G.107 E-model (simplified to its delay and
loss impairments), producing the familiar 1–5 MOS.  Experiment E4 reports MOS
for the competitor's calls with and without discrimination, with and without
the neutralizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import WorkloadError
from ..netsim.node import Host
from ..netsim.stats import LatencySampler
from ..packet.addresses import IPv4Address
from ..packet.builder import udp_packet
from ..packet.dscp import Dscp
from ..packet.packet import Packet

#: Default codec parameters, G.711-like: 50 packets/s, 160-byte frames.
DEFAULT_PACKET_INTERVAL = 0.020
DEFAULT_PAYLOAD_BYTES = 160
DEFAULT_VOIP_PORT = 16384


@dataclass
class VoipQualityReport:
    """Received-stream quality of one call direction."""

    packets_sent: int
    packets_received: int
    mean_latency_seconds: float
    p95_latency_seconds: float
    jitter_seconds: float

    @property
    def loss_rate(self) -> float:
        """Fraction of packets that never arrived."""
        if self.packets_sent == 0:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent

    @property
    def r_factor(self) -> float:
        """Simplified E-model transmission rating.

        R = R0 - Id(delay) - Ie_eff(loss) with R0 = 93.2.  The delay
        impairment follows the usual piecewise-linear approximation around the
        177.3 ms knee; the loss impairment uses G.711's equipment factor with
        random loss (Bpl = 25.1, Ie = 0).
        """
        one_way_ms = self.mean_latency_seconds * 1000.0
        delay_impairment = 0.024 * one_way_ms
        if one_way_ms > 177.3:
            delay_impairment += 0.11 * (one_way_ms - 177.3)
        loss_percent = self.loss_rate * 100.0
        loss_impairment = 0.0 + 95.0 * loss_percent / (loss_percent + 25.1)
        return 93.2 - delay_impairment - loss_impairment

    @property
    def mos(self) -> float:
        """Mean opinion score (1.0–4.5) derived from the R factor."""
        r = max(0.0, min(100.0, self.r_factor))
        if r <= 0:
            return 1.0
        mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
        return max(1.0, min(4.5, mos))

    @property
    def is_usable(self) -> bool:
        """Rule of thumb: calls below MOS 3.1 are considered unusable."""
        return self.mos >= 3.1


class VoipReceiver:
    """Receives a VoIP stream on a host and records per-packet quality."""

    def __init__(self, host: Host, port: int = DEFAULT_VOIP_PORT) -> None:
        self.host = host
        self.port = port
        self.latency = LatencySampler()
        self.packets_received = 0
        self.bytes_received = 0
        host.register_port_handler(port, self._handle)

    def _handle(self, packet: Packet, host: Host) -> None:
        self.packets_received += 1
        self.bytes_received += len(packet.payload)
        sent_at = packet.meta.get("voip_sent_at")
        if sent_at is not None:
            self.latency.record(host.sim.now - sent_at)


class VoipCall:
    """One direction of a VoIP call (sender side drives the schedule)."""

    def __init__(
        self,
        caller: Host,
        callee_address: IPv4Address,
        receiver: VoipReceiver,
        *,
        name: str = "call",
        duration_seconds: float = 10.0,
        packet_interval: float = DEFAULT_PACKET_INTERVAL,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        dscp: int = int(Dscp.BEST_EFFORT),
        port: int = DEFAULT_VOIP_PORT,
    ) -> None:
        if duration_seconds <= 0 or packet_interval <= 0:
            raise WorkloadError("call duration and packet interval must be positive")
        self.caller = caller
        self.callee_address = callee_address
        self.receiver = receiver
        self.name = name
        self.duration_seconds = duration_seconds
        self.packet_interval = packet_interval
        self.payload_bytes = payload_bytes
        self.dscp = dscp
        self.port = port
        self.packets_sent = 0
        self._started = False

    @property
    def total_packets(self) -> int:
        """Number of packets the call will send."""
        return int(self.duration_seconds / self.packet_interval)

    def start(self, delay: float = 0.0) -> None:
        """Schedule the whole packet train starting ``delay`` seconds from now."""
        if self._started:
            raise WorkloadError(f"call {self.name} already started")
        self._started = True
        for index in range(self.total_packets):
            self.caller.sim.schedule(delay + index * self.packet_interval, self._send_one, index)

    def _send_one(self, index: int) -> None:
        payload = bytes([index % 251]) * self.payload_bytes
        packet = udp_packet(
            self.caller.address,
            self.callee_address,
            payload,
            source_port=self.port,
            destination_port=self.port,
            dscp=self.dscp,
            flow_id=self.name,
        )
        packet.meta["voip_sent_at"] = self.caller.sim.now
        self.caller.send(packet)
        self.packets_sent += 1

    def report(self) -> VoipQualityReport:
        """Quality report for the receiving side of this call."""
        return VoipQualityReport(
            packets_sent=self.packets_sent,
            packets_received=self.receiver.packets_received,
            mean_latency_seconds=self.receiver.latency.mean,
            p95_latency_seconds=self.receiver.latency.percentile(0.95),
            jitter_seconds=self.receiver.latency.jitter,
        )


def run_call(
    topology,
    caller: Host,
    callee: Host,
    *,
    duration_seconds: float = 5.0,
    dscp: int = int(Dscp.BEST_EFFORT),
    name: str = "call",
    extra_runtime: float = 2.0,
    destination_address: Optional[IPv4Address] = None,
) -> VoipQualityReport:
    """Convenience: set up receiver + call, run the simulation, return the report."""
    receiver = VoipReceiver(callee)
    call = VoipCall(
        caller,
        destination_address or callee.address,
        receiver,
        name=name,
        duration_seconds=duration_seconds,
        dscp=dscp,
    )
    call.start()
    topology.run(duration_seconds + extra_runtime)
    return call.report()
