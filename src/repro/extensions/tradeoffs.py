"""Analytical security/cost tradeoffs for the key-setup design (§3.2).

Wraps the raw cost functions from :mod:`repro.crypto.rsa` into the
neutralizer-specific questions the paper raises: is the one-time key's
exposure window (two RTTs until ``Ks'`` arrives) comfortably below the time
an attacker needs to factor it, and how does the answer move with key size,
RTT, and attacker capability?  Used by experiment E7 and the keysize ablation
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.keysetup import attacker_window_seconds
from ..crypto.rsa import (
    decryption_cost_multiplications,
    encryption_cost_multiplications,
    estimate_factoring_cost,
    symmetric_equivalent_bits,
)


@dataclass(frozen=True)
class TradeoffPoint:
    """One (key size, RTT, attacker capability) evaluation."""

    rsa_bits: int
    rtt_seconds: float
    attacker_ops_per_second: float

    @property
    def exposure_window_seconds(self) -> float:
        """How long the weak key must resist (two RTTs, §3.2)."""
        return attacker_window_seconds(self.rtt_seconds)

    @property
    def factoring_seconds(self) -> float:
        """Estimated time for the attacker to factor the modulus."""
        return estimate_factoring_cost(self.rsa_bits, self.attacker_ops_per_second)

    @property
    def safety_margin(self) -> float:
        """Factoring time over exposure window (values >> 1 mean the design holds)."""
        if self.exposure_window_seconds <= 0:
            return float("inf")
        return self.factoring_seconds / self.exposure_window_seconds

    @property
    def is_safe(self) -> bool:
        """Conservative check: at least a 10^6x margin."""
        return self.safety_margin >= 1e6

    @property
    def neutralizer_cost_multiplications(self) -> int:
        """Modular multiplications per key setup at the neutralizer (e = 3)."""
        return encryption_cost_multiplications(3, self.rsa_bits)

    @property
    def source_cost_multiplications(self) -> int:
        """Modular multiplications per key setup at the source (CRT decryption)."""
        return decryption_cost_multiplications(self.rsa_bits)

    @property
    def symmetric_equivalent(self) -> float:
        """Symmetric-key-strength equivalent of the modulus size."""
        return symmetric_equivalent_bits(self.rsa_bits)


def sweep(
    key_sizes: Sequence[int] = (384, 512, 768, 1024),
    rtts: Sequence[float] = (0.02, 0.1, 0.5),
    attacker_ops_per_second: float = 1e12,
) -> List[TradeoffPoint]:
    """Evaluate the tradeoff over a grid of key sizes and RTTs."""
    return [
        TradeoffPoint(rsa_bits=bits, rtt_seconds=rtt,
                      attacker_ops_per_second=attacker_ops_per_second)
        for bits in key_sizes
        for rtt in rtts
    ]


def minimum_safe_key_bits(
    rtt_seconds: float,
    attacker_ops_per_second: float,
    candidates: Sequence[int] = (384, 512, 768, 1024, 1536, 2048),
) -> int:
    """Smallest candidate key size whose safety margin is acceptable."""
    for bits in sorted(candidates):
        point = TradeoffPoint(bits, rtt_seconds, attacker_ops_per_second)
        if point.is_safe:
            return bits
    return max(candidates)
