"""Adaptive traffic masking (the §2 future-work mitigation), as an extension.

The paper explicitly scopes traffic-analysis attacks out: "If in the practical
deployment ISPs can use traffic analysis to successfully discriminate, we will
consider incorporating mechanisms such as adaptive traffic masking to defeat
such attacks."  This module provides that mechanism as an optional host-side
extension: packets are padded to a small set of canonical sizes and
(optionally) the sending schedule is quantized, which removes the two features
a 2006-era traffic-analysis classifier keys on — packet length and
inter-packet timing.  It is *not* part of the core guarantees and is measured
separately (padding overhead vs classifier accuracy) in the extension tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..netsim.node import Host
from ..packet.packet import Packet

#: Canonical padded sizes (bytes of payload), roughly wireline MTU quartiles.
DEFAULT_SIZE_BUCKETS = (128, 512, 1024, 1400)


def pad_to_bucket(payload: bytes, buckets: Sequence[int] = DEFAULT_SIZE_BUCKETS) -> bytes:
    """Pad a payload up to the next canonical size (length-prefixed for removal)."""
    framed = len(payload).to_bytes(4, "big") + payload
    for bucket in sorted(buckets):
        if len(framed) <= bucket:
            return framed + b"\x00" * (bucket - len(framed))
    return framed  # larger than every bucket: leave as is


def unpad(padded: bytes) -> bytes:
    """Recover the original payload from :func:`pad_to_bucket` output."""
    if len(padded) < 4:
        return padded
    length = int.from_bytes(padded[:4], "big")
    if length > len(padded) - 4:
        return padded
    return padded[4:4 + length]


@dataclass
class MaskingStatistics:
    """Overhead accounting for the masking extension."""

    packets_masked: int = 0
    original_bytes: int = 0
    padded_bytes: int = 0

    @property
    def overhead_ratio(self) -> float:
        """Padded bytes over original bytes (1.0 = no overhead)."""
        if self.original_bytes == 0:
            return 1.0
        return self.padded_bytes / self.original_bytes


class TrafficMasker:
    """Egress hook that pads payloads to canonical sizes.

    Install *before* the neutralizer client stack so the padded payload is
    what gets end-to-end encrypted (the sizes seen by the access ISP are then
    the canonical buckets plus constant protocol overhead).
    """

    def __init__(self, buckets: Sequence[int] = DEFAULT_SIZE_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.stats = MaskingStatistics()

    def install(self, host: Host) -> "TrafficMasker":
        """Attach the masking hook to a host's egress path."""
        host.egress_hooks.insert(0, self._egress_hook)
        return self

    def _egress_hook(self, packet: Packet, host: Host) -> Packet:
        masked = packet.copy()
        original = masked.payload
        masked.payload = pad_to_bucket(original, self.buckets)
        masked.meta["masked"] = True
        self.stats.packets_masked += 1
        self.stats.original_bytes += len(original)
        self.stats.padded_bytes += len(masked.payload)
        return masked


class SizeClassifier:
    """A toy traffic-analysis classifier keyed on observed payload sizes.

    Trained on labelled (application, size) observations; classifies a new
    observation by nearest seen size.  Its accuracy collapse under masking is
    the extension's success metric.
    """

    def __init__(self) -> None:
        self._observations: Dict[int, Dict[str, int]] = {}

    def train(self, application: str, size: int) -> None:
        """Record a labelled observation."""
        self._observations.setdefault(size, {})
        self._observations[size][application] = self._observations[size].get(application, 0) + 1

    def classify(self, size: int) -> Optional[str]:
        """Guess the application for an observed size (majority of nearest size)."""
        if not self._observations:
            return None
        nearest = min(self._observations, key=lambda s: abs(s - size))
        votes = self._observations[nearest]
        return max(votes, key=votes.get)

    def accuracy(self, labelled: List) -> float:
        """Accuracy over (application, size) pairs."""
        if not labelled:
            return 0.0
        correct = sum(1 for app, size in labelled if self.classify(size) == app)
        return correct / len(labelled)
