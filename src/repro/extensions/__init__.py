"""Optional extensions: traffic masking (§2 future work) and tradeoff analysis."""

from .masking import (
    DEFAULT_SIZE_BUCKETS,
    MaskingStatistics,
    SizeClassifier,
    TrafficMasker,
    pad_to_bucket,
    unpad,
)
from .tradeoffs import TradeoffPoint, minimum_safe_key_bits, sweep

__all__ = [
    "DEFAULT_SIZE_BUCKETS",
    "MaskingStatistics",
    "SizeClassifier",
    "TrafficMasker",
    "pad_to_bucket",
    "unpad",
    "TradeoffPoint",
    "minimum_safe_key_bits",
    "sweep",
]
