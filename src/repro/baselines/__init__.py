"""Baselines the paper compares against: vanilla forwarding, onion routing, paying ISPs."""

from .onion import (
    DEFAULT_CIRCUIT_LENGTH,
    OnionClient,
    OnionRelay,
    RelayCircuitState,
    ResourceComparison,
    compare_resources,
)
from .payer import AccessProvider, PayerOutcome, PayEveryIspModel
from .vanilla import VanillaForwarder

__all__ = [
    "DEFAULT_CIRCUIT_LENGTH",
    "OnionClient",
    "OnionRelay",
    "RelayCircuitState",
    "ResourceComparison",
    "compare_resources",
    "AccessProvider",
    "PayerOutcome",
    "PayEveryIspModel",
    "VanillaForwarder",
]
