"""Vanilla IP forwarding baseline.

The paper's §4 compares the neutralizer's data-path throughput (422 kpps)
against the same box forwarding "vanilla IP packets of the same size" at
600 kpps.  :class:`VanillaForwarder` is that baseline: it performs the same
header handling work a neutralizer does (parse, TTL, rebuild) but no
cryptography, so the benchmark measures exactly the incremental cost of the
hash + AES operations — the quantity the paper's conclusion ("crypto is not
the bottleneck") rests on.
"""

from __future__ import annotations

from typing import Dict, List

from ..packet.packet import Packet


class VanillaForwarder:
    """A forwarding fast path with no neutralization logic."""

    def __init__(self, name: str = "vanilla") -> None:
        self.name = name
        self.counters: Dict[str, int] = {"packets_forwarded": 0, "bytes_forwarded": 0}

    def process(self, packet: Packet) -> List[Packet]:
        """Forward one packet: decrement TTL and pass it on unchanged otherwise."""
        forwarded = packet.copy()
        forwarded.ip = forwarded.ip.decremented_ttl()
        self.counters["packets_forwarded"] += 1
        self.counters["bytes_forwarded"] += forwarded.size_bytes
        return [forwarded]

    def state_entries(self) -> int:
        """Per-flow state held (none; included for the E6 comparison table)."""
        return 0
