"""The "pay every access provider" non-solution, as an economics model.

Section 1 sketches the alternative to a technical fix: "individual innovators
that can afford to pay (say Google) might choose to pay every access provider
to avoid appearing slow to users.  However, it's unclear whether there is
sufficient market force to regulate the price Google needs to pay, because
once a user has chosen his access provider, that access provider becomes a
monopoly to Google."

This module turns that paragraph into a simple, explicit cost model so the E5
report can contrast the neutralizer (one-time engineering cost, no per-ISP
rent) with paying termination fees to every access monopoly.  The model is
deliberately transparent: every parameter is an input, nothing is fitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class AccessProvider:
    """One access ISP from the paying innovator's point of view."""

    name: str
    subscribers: int
    #: Monthly fee the ISP asks per subscriber reached at full speed.
    fee_per_subscriber: float
    #: Fraction of the innovator's users behind this ISP that churn away if
    #: the service appears slow (used for the "refuse to pay" branch).
    churn_if_degraded: float = 0.3


@dataclass
class PayerOutcome:
    """Cost and reach of one strategy."""

    strategy: str
    monthly_cost: float
    users_reached_full_speed: int
    users_lost: int

    def cost_per_retained_user(self) -> float:
        """Monthly cost per user kept at full speed (inf when no users kept)."""
        if self.users_reached_full_speed == 0:
            return float("inf")
        return self.monthly_cost / self.users_reached_full_speed


class PayEveryIspModel:
    """Compare paying every ISP vs deploying behind a neutral ISP."""

    def __init__(self, providers: List[AccessProvider],
                 *, neutral_transit_monthly_cost: float = 0.0) -> None:
        if not providers:
            raise ValueError("the model needs at least one access provider")
        self.providers = list(providers)
        self.neutral_transit_monthly_cost = neutral_transit_monthly_cost

    @property
    def total_subscribers(self) -> int:
        """All subscribers across providers."""
        return sum(provider.subscribers for provider in self.providers)

    def pay_everyone(self) -> PayerOutcome:
        """Pay each access monopoly the asking price."""
        cost = sum(p.subscribers * p.fee_per_subscriber for p in self.providers)
        return PayerOutcome(
            strategy="pay every access ISP",
            monthly_cost=cost,
            users_reached_full_speed=self.total_subscribers,
            users_lost=0,
        )

    def pay_none(self) -> PayerOutcome:
        """Refuse to pay: every discriminating ISP degrades, some users churn."""
        lost = sum(int(p.subscribers * p.churn_if_degraded) for p in self.providers)
        return PayerOutcome(
            strategy="pay no one (accept degradation)",
            monthly_cost=0.0,
            users_reached_full_speed=0,
            users_lost=lost,
        )

    def use_neutralizer(self) -> PayerOutcome:
        """Buy transit from a neutral ISP that runs the neutralizer service."""
        return PayerOutcome(
            strategy="neutral ISP + neutralizer",
            monthly_cost=self.neutral_transit_monthly_cost,
            users_reached_full_speed=self.total_subscribers,
            users_lost=0,
        )

    def monopoly_price_sensitivity(self, multipliers: List[float]) -> Dict[float, float]:
        """Total monthly cost of paying everyone as each ISP scales its ask.

        Demonstrates the "access provider becomes a monopoly to Google" point:
        there is no competitive ceiling on the fee, so the cost grows linearly
        with whatever the monopolies decide to charge.
        """
        base = self.pay_everyone().monthly_cost
        return {multiplier: base * multiplier for multiplier in multipliers}

    def compare(self) -> List[PayerOutcome]:
        """All three strategies side by side (rows of the E5 economics table)."""
        return [self.pay_everyone(), self.pay_none(), self.use_neutralizer()]
