"""Onion-routing baseline (Tor-like) for the §5 comparison.

The paper argues the neutralizer is "considerably more efficient and scalable"
than anonymous routing because anonymous routing keeps per-flow state at every
relay and performs per-circuit public-key handshakes, whereas the neutralizer
keeps no state and performs one cheap RSA encryption per source per master-key
lifetime.  This module implements a deliberately faithful *cost model* of a
three-hop onion circuit — telescoped public-key circuit construction, per-hop
per-circuit symmetric keys kept in relay tables, layered AES on every data
cell — so experiment E6 can put the two designs' state and public-key budgets
side by side on identical workloads.  It is not Tor; it is the resource model
of Tor-style designs the related-work section refers to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.backend import get_cipher
from ..crypto.modes import ctr_decrypt, ctr_encrypt
from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..crypto.rsa import RsaKeyPair, generate_keypair
from ..exceptions import NeutralizerError
from ..packet.addresses import IPv4Address

#: Default circuit length (entry, middle, exit), as in Tor.
DEFAULT_CIRCUIT_LENGTH = 3


@dataclass
class RelayCircuitState:
    """Per-circuit state one relay must keep (the thing the neutralizer avoids)."""

    circuit_id: int
    symmetric_key: bytes
    next_hop: Optional[str]
    previous_hop: Optional[str]


class OnionRelay:
    """A relay node with a long-term key pair and a per-circuit state table."""

    def __init__(self, name: str, *, key_bits: int = 1024,
                 rng: Optional[RandomSource] = None, backend: Optional[str] = None) -> None:
        self.name = name
        self._rng = rng or DEFAULT_SOURCE
        self._backend = backend
        self.keypair: RsaKeyPair = generate_keypair(key_bits, self._rng)
        self.circuits: Dict[int, RelayCircuitState] = {}
        self.counters: Dict[str, int] = {
            "public_key_decryptions": 0,
            "aes_operations": 0,
            "cells_relayed": 0,
            "circuits_created": 0,
        }

    def state_entries(self) -> int:
        """Number of per-circuit entries currently held."""
        return len(self.circuits)

    # -- circuit construction -----------------------------------------------------------

    def extend_circuit(self, circuit_id: int, handshake: bytes,
                       previous_hop: Optional[str], next_hop: Optional[str]) -> bytes:
        """Process a create/extend cell: costs one RSA decryption and one table entry."""
        symmetric_key = self.keypair.private.decrypt(handshake)
        self.counters["public_key_decryptions"] += 1
        if len(symmetric_key) < 16:
            raise NeutralizerError("malformed onion handshake")
        self.circuits[circuit_id] = RelayCircuitState(
            circuit_id=circuit_id,
            symmetric_key=symmetric_key[:16],
            next_hop=next_hop,
            previous_hop=previous_hop,
        )
        self.counters["circuits_created"] += 1
        return symmetric_key[:16]

    def teardown_circuit(self, circuit_id: int) -> None:
        """Remove per-circuit state."""
        self.circuits.pop(circuit_id, None)

    # -- data path ----------------------------------------------------------------------------

    def peel(self, circuit_id: int, cell: bytes) -> Tuple[Optional[str], bytes]:
        """Remove this relay's onion layer from a forward cell."""
        state = self.circuits.get(circuit_id)
        if state is None:
            raise NeutralizerError(f"relay {self.name} has no circuit {circuit_id}")
        cipher = get_cipher(state.symmetric_key, backend=self._backend)
        peeled = ctr_decrypt(cipher, circuit_id.to_bytes(8, "big"), cell)
        self.counters["aes_operations"] += 1
        self.counters["cells_relayed"] += 1
        return state.next_hop, peeled

    def wrap(self, circuit_id: int, cell: bytes) -> Tuple[Optional[str], bytes]:
        """Add this relay's onion layer to a return cell."""
        state = self.circuits.get(circuit_id)
        if state is None:
            raise NeutralizerError(f"relay {self.name} has no circuit {circuit_id}")
        cipher = get_cipher(state.symmetric_key, backend=self._backend)
        wrapped = ctr_encrypt(cipher, circuit_id.to_bytes(8, "big"), cell)
        self.counters["aes_operations"] += 1
        self.counters["cells_relayed"] += 1
        return state.previous_hop, wrapped


class OnionClient:
    """The client side: builds circuits and onion-encrypts cells."""

    def __init__(self, rng: Optional[RandomSource] = None, backend: Optional[str] = None) -> None:
        self._rng = rng or DEFAULT_SOURCE
        self._backend = backend
        self._next_circuit_id = 1
        #: circuit id -> ordered list of (relay, symmetric key).
        self.circuits: Dict[int, List[Tuple[OnionRelay, bytes]]] = {}
        self.counters: Dict[str, int] = {
            "public_key_encryptions": 0,
            "aes_operations": 0,
            "circuits_built": 0,
        }

    def build_circuit(self, relays: List[OnionRelay]) -> int:
        """Telescope a circuit through ``relays`` (one PK operation per hop)."""
        if not relays:
            raise NeutralizerError("a circuit needs at least one relay")
        circuit_id = self._next_circuit_id
        self._next_circuit_id += 1
        hops: List[Tuple[OnionRelay, bytes]] = []
        for index, relay in enumerate(relays):
            key_material = self._rng.random_bytes(16)
            handshake = relay.keypair.public.encrypt(key_material, self._rng)
            self.counters["public_key_encryptions"] += 1
            previous_hop = relays[index - 1].name if index > 0 else None
            next_hop = relays[index + 1].name if index + 1 < len(relays) else None
            negotiated = relay.extend_circuit(circuit_id, handshake, previous_hop, next_hop)
            hops.append((relay, negotiated))
        self.circuits[circuit_id] = hops
        self.counters["circuits_built"] += 1
        return circuit_id

    def close_circuit(self, circuit_id: int) -> None:
        """Tear down a circuit at every relay."""
        for relay, _key in self.circuits.pop(circuit_id, []):
            relay.teardown_circuit(circuit_id)

    # -- data path -------------------------------------------------------------------------------

    def onion_encrypt(self, circuit_id: int, payload: bytes) -> bytes:
        """Apply all layers (innermost = exit relay) to a forward cell."""
        hops = self._hops(circuit_id)
        cell = payload
        for relay, key in reversed(hops):
            cipher = get_cipher(key, backend=self._backend)
            cell = ctr_encrypt(cipher, circuit_id.to_bytes(8, "big"), cell)
            self.counters["aes_operations"] += 1
        return cell

    def send_through(self, circuit_id: int, payload: bytes) -> bytes:
        """Send a cell through the whole circuit, returning what exits the last relay."""
        cell = self.onion_encrypt(circuit_id, payload)
        hops = self._hops(circuit_id)
        for relay, _key in hops:
            _next, cell = relay.peel(circuit_id, cell)
        return cell

    def receive_through(self, circuit_id: int, payload: bytes) -> bytes:
        """Model the return direction: relays wrap, the client unwraps all layers."""
        hops = self._hops(circuit_id)
        cell = payload
        for relay, _key in reversed(hops):
            _prev, cell = relay.wrap(circuit_id, cell)
        for relay, key in hops:
            cipher = get_cipher(key, backend=self._backend)
            cell = ctr_decrypt(cipher, circuit_id.to_bytes(8, "big"), cell)
            self.counters["aes_operations"] += 1
        return cell

    def _hops(self, circuit_id: int) -> List[Tuple[OnionRelay, bytes]]:
        if circuit_id not in self.circuits:
            raise NeutralizerError(f"unknown circuit {circuit_id}")
        return self.circuits[circuit_id]


@dataclass
class ResourceComparison:
    """Side-by-side resource accounting used by experiment E6."""

    flows: int
    packets_per_flow: int
    neutralizer_state_entries: int
    neutralizer_public_key_ops: int
    neutralizer_aes_ops_per_packet: float
    onion_state_entries: int
    onion_public_key_ops: int
    onion_aes_ops_per_packet: float

    def as_rows(self) -> List[Tuple[str, float, float]]:
        """Rows of (metric, neutralizer, onion) for the report table."""
        return [
            ("per-relay/per-box state entries", self.neutralizer_state_entries,
             self.onion_state_entries),
            ("public-key operations", self.neutralizer_public_key_ops,
             self.onion_public_key_ops),
            ("AES operations per data packet", self.neutralizer_aes_ops_per_packet,
             self.onion_aes_ops_per_packet),
        ]


def compare_resources(
    flows: int,
    packets_per_flow: int,
    *,
    circuit_length: int = DEFAULT_CIRCUIT_LENGTH,
    sources_per_master_key: Optional[int] = None,
) -> ResourceComparison:
    """Analytic resource comparison for E6 (measured variants live in the bench).

    The neutralizer performs one RSA encryption per *source* per master-key
    lifetime (``sources_per_master_key`` defaults to one per flow, the worst
    case) and 1 AES + 1 hash per packet; an onion design performs
    ``circuit_length`` public-key operations per circuit at the client and one
    decryption per relay, keeps one state entry per circuit per relay, and
    applies ``circuit_length`` AES layers per packet at the client plus one
    per relay.
    """
    sources = sources_per_master_key if sources_per_master_key is not None else flows
    return ResourceComparison(
        flows=flows,
        packets_per_flow=packets_per_flow,
        neutralizer_state_entries=0,
        neutralizer_public_key_ops=sources,
        neutralizer_aes_ops_per_packet=1.0,
        onion_state_entries=flows,
        onion_public_key_ops=flows * circuit_length * 2,
        onion_aes_ops_per_packet=float(2 * circuit_length),
    )
