"""repro — reproduction of "A Technical Approach to Net Neutrality" (HotNets 2006).

The package implements the paper's neutralizer service — a stateless
anonymizing box that prevents an ISP from discriminating against packets based
on contents, application types, or non-customer addresses — together with
every substrate the design and its evaluation depend on: a from-scratch crypto
layer (RSA, AES, the stateless key derivation), a packet model with the shim
layer, a discrete-event network simulator with ISPs and anycast routing, DNS
bootstrap with encrypted transport, an IPsec-like end-to-end layer, DiffServ/
IntServ QoS, discriminatory-ISP policy models, an onion-routing baseline, a
pushback DoS defense, and application workloads (VoIP/web/video) used by the
experiments.

Quick start::

    from repro import quickstart_topology  # see examples/quickstart.py

Subpackages
-----------
``repro.core``
    The paper's contribution: neutralizer, key setup, host stacks, anycast
    deployment, multihoming, offloading.
``repro.crypto`` / ``repro.packet`` / ``repro.netsim`` / ``repro.dns`` /
``repro.e2e`` / ``repro.qos`` / ``repro.discrimination``
    Substrates.
``repro.baselines`` / ``repro.defense`` / ``repro.apps`` / ``repro.analysis``
    Baselines (vanilla forwarding, onion routing), pushback, application
    models and the experiment/report harness.
``repro.scale``
    Flow-level (fluid) fleet simulator: client populations as vectorized
    aggregate demand, consistent-hash fleets over :mod:`repro.core.anycast`,
    a numpy max-min fair capacity solver, a campaign runner sweeping
    10^3–10^6 clients, and cross-validation against the packet-level
    simulator.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
