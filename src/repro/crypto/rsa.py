"""From-scratch RSA for the neutralizer key-setup protocol.

The paper's protocol (§3.2) uses RSA asymmetrically in an unusual direction:

* the **source** generates a *short one-time* key pair (512 bits suggested)
  and performs the slow private-key (decryption) operation;
* the **neutralizer** performs only the cheap public-key (encryption)
  operation — with exponent 3 that is about two modular multiplications —
  which is what makes a stateless line-rate box plausible.

This module provides exactly what that protocol needs: key generation at
small-to-normal sizes, raw ("textbook") modular exponentiation for cost
modelling, and a simple randomized padding mode for actually hiding the
``(nonce, Ks)`` payload.  It also exposes :func:`estimate_factoring_cost`
which backs the §3.2 security-window discussion (a 512-bit RSA key ~ 56-bit
symmetric key) and the E7 key-size tradeoff benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..exceptions import DecryptionError, KeySizeError, PaddingError
from .primes import generate_safe_exponent_prime
from .randomness import DEFAULT_SOURCE, RandomSource

#: The fixed public exponent suggested by the paper ("as few as two
#: multiplications, if the exponent in the public key is 3").
DEFAULT_PUBLIC_EXPONENT = 3

#: Key sizes the library accepts.  512 is the paper's one-time key size;
#: 384 is allowed for cost-model sweeps, 1024/2048 for "strong" e2e keys.
SUPPORTED_KEY_BITS = (384, 512, 768, 1024, 1536, 2048)

#: Approximate symmetric-equivalent strength in bits, interpolated from the
#: usual NIST/Lenstra tables.  The paper states 512-bit RSA ~ 56-bit symmetric.
_SYMMETRIC_EQUIVALENT = {
    384: 45.0,
    512: 56.0,
    768: 67.0,
    1024: 80.0,
    1536: 96.0,
    2048: 112.0,
}


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``.

    The object is immutable so it can be embedded in packets and DNS records
    and shared between simulated hosts without defensive copying.
    """

    modulus: int
    exponent: int = DEFAULT_PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        """Modulus width in bits."""
        return self.modulus.bit_length()

    @property
    def max_message_bytes(self) -> int:
        """Largest padded plaintext this key can encrypt (padding needs 11 bytes)."""
        return self.byte_length - 11

    @property
    def byte_length(self) -> int:
        """Modulus width in whole bytes."""
        return (self.modulus.bit_length() + 7) // 8

    def encrypt_raw(self, message: int) -> int:
        """Textbook RSA encryption of an integer message (no padding)."""
        if not 0 <= message < self.modulus:
            raise ValueError("message out of range for this modulus")
        return pow(message, self.exponent, self.modulus)

    def encrypt(self, plaintext: bytes, rng: Optional[RandomSource] = None) -> bytes:
        """Encrypt ``plaintext`` with randomized PKCS#1-v1.5-style padding.

        The neutralizer calls this once per key-setup packet; with ``e = 3``
        the modular exponentiation costs two multiplications, which is the
        efficiency argument of §3.2.
        """
        source = rng or DEFAULT_SOURCE
        k = self.byte_length
        if len(plaintext) > k - 11:
            raise ValueError(
                f"plaintext of {len(plaintext)} bytes does not fit a "
                f"{self.bits}-bit modulus with padding"
            )
        pad_len = k - len(plaintext) - 3
        padding = bytearray()
        while len(padding) < pad_len:
            chunk = source.random_bytes(pad_len - len(padding))
            padding.extend(b for b in chunk if b != 0)
        block = b"\x00\x02" + bytes(padding) + b"\x00" + plaintext
        ciphertext_int = self.encrypt_raw(int.from_bytes(block, "big"))
        return ciphertext_int.to_bytes(k, "big")

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a signature produced by :meth:`RsaPrivateKey.sign`."""
        from .kdf import sha256

        if len(signature) != self.byte_length:
            return False
        recovered = self.encrypt_raw(int.from_bytes(signature, "big"))
        digest = recovered.to_bytes(self.byte_length, "big")[-32:]
        return digest == sha256(message)

    def wire_bytes(self) -> bytes:
        """Serialize the key for embedding in a key-setup packet."""
        n_bytes = self.modulus.to_bytes(self.byte_length, "big")
        e_bytes = self.exponent.to_bytes(4, "big")
        return len(n_bytes).to_bytes(2, "big") + n_bytes + e_bytes

    @classmethod
    def from_wire(cls, data: bytes) -> Tuple["RsaPublicKey", int]:
        """Parse a key serialized by :meth:`wire_bytes`.

        Returns the key and the number of bytes consumed so callers can parse
        keys embedded mid-packet.
        """
        if len(data) < 2:
            raise KeySizeError("truncated RSA public key")
        n_len = int.from_bytes(data[:2], "big")
        if len(data) < 2 + n_len + 4:
            raise KeySizeError("truncated RSA public key body")
        modulus = int.from_bytes(data[2:2 + n_len], "big")
        exponent = int.from_bytes(data[2 + n_len:2 + n_len + 4], "big")
        return cls(modulus=modulus, exponent=exponent), 2 + n_len + 4


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key with CRT parameters for fast decryption."""

    modulus: int
    public_exponent: int
    private_exponent: int
    prime_p: int
    prime_q: int

    @property
    def bits(self) -> int:
        """Modulus width in bits."""
        return self.modulus.bit_length()

    @property
    def byte_length(self) -> int:
        """Modulus width in whole bytes."""
        return (self.modulus.bit_length() + 7) // 8

    @property
    def public_key(self) -> RsaPublicKey:
        """The matching public key."""
        return RsaPublicKey(modulus=self.modulus, exponent=self.public_exponent)

    def decrypt_raw(self, ciphertext: int) -> int:
        """Textbook RSA decryption using the CRT (about 4x faster than naive)."""
        if not 0 <= ciphertext < self.modulus:
            raise ValueError("ciphertext out of range for this modulus")
        p, q = self.prime_p, self.prime_q
        d_p = self.private_exponent % (p - 1)
        d_q = self.private_exponent % (q - 1)
        q_inv = pow(q, -1, p)
        m_p = pow(ciphertext % p, d_p, p)
        m_q = pow(ciphertext % q, d_q, q)
        h = (q_inv * (m_p - m_q)) % p
        return m_q + h * q

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and strip the randomized padding added by ``encrypt``."""
        if len(ciphertext) != self.byte_length:
            raise DecryptionError(
                f"ciphertext length {len(ciphertext)} does not match "
                f"{self.byte_length}-byte modulus"
            )
        block_int = self.decrypt_raw(int.from_bytes(ciphertext, "big"))
        block = block_int.to_bytes(self.byte_length, "big")
        if block[0] != 0x00 or block[1] != 0x02:
            raise PaddingError("bad padding prefix")
        try:
            separator = block.index(b"\x00", 2)
        except ValueError as exc:
            raise PaddingError("padding separator missing") from exc
        if separator < 10:
            raise PaddingError("padding too short")
        return block[separator + 1:]

    def sign(self, message: bytes) -> bytes:
        """Produce a simple hash-then-raw-decrypt signature (for DNS records)."""
        from .kdf import sha256

        digest = int.from_bytes(sha256(message), "big")
        if digest >= self.modulus:
            digest %= self.modulus
        signature_int = self.decrypt_raw(digest)
        return signature_int.to_bytes(self.byte_length, "big")


@dataclass(frozen=True)
class RsaKeyPair:
    """Convenience bundle returned by :func:`generate_keypair`."""

    public: RsaPublicKey
    private: RsaPrivateKey

    @property
    def bits(self) -> int:
        return self.public.bits


def generate_keypair(
    bits: int = 512,
    rng: Optional[RandomSource] = None,
    public_exponent: int = DEFAULT_PUBLIC_EXPONENT,
) -> RsaKeyPair:
    """Generate an RSA key pair of ``bits`` modulus width.

    512 bits is the paper's one-time key size.  Generation retries until the
    modulus has exactly the requested width and the exponent is invertible.
    """
    if bits not in SUPPORTED_KEY_BITS:
        raise KeySizeError(
            f"unsupported RSA size {bits}; supported sizes: {SUPPORTED_KEY_BITS}"
        )
    source = rng or DEFAULT_SOURCE
    half = bits // 2
    while True:
        p = generate_safe_exponent_prime(half, public_exponent, source)
        q = generate_safe_exponent_prime(half, public_exponent, source)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if math.gcd(public_exponent, phi) != 1:
            continue
        d = pow(public_exponent, -1, phi)
        public = RsaPublicKey(modulus=n, exponent=public_exponent)
        private = RsaPrivateKey(
            modulus=n,
            public_exponent=public_exponent,
            private_exponent=d,
            prime_p=p,
            prime_q=q,
        )
        return RsaKeyPair(public=public, private=private)


def symmetric_equivalent_bits(rsa_bits: int) -> float:
    """Approximate symmetric-key strength of an RSA modulus of ``rsa_bits``.

    The paper's security argument leans on "a 512-bit RSA key is only as
    secure as a 56-bit symmetric key"; this function reproduces that mapping
    and interpolates between table entries for sweep experiments.
    """
    sizes = sorted(_SYMMETRIC_EQUIVALENT)
    if rsa_bits <= sizes[0]:
        return _SYMMETRIC_EQUIVALENT[sizes[0]]
    if rsa_bits >= sizes[-1]:
        return _SYMMETRIC_EQUIVALENT[sizes[-1]]
    for low, high in zip(sizes, sizes[1:]):
        if low <= rsa_bits <= high:
            frac = (rsa_bits - low) / (high - low)
            return _SYMMETRIC_EQUIVALENT[low] + frac * (
                _SYMMETRIC_EQUIVALENT[high] - _SYMMETRIC_EQUIVALENT[low]
            )
    raise AssertionError("unreachable")


def estimate_factoring_cost(rsa_bits: int, attacker_ops_per_second: float = 1e12) -> float:
    """Estimate the wall-clock seconds an attacker needs to factor a modulus.

    The estimate treats the symmetric-equivalent strength as an exhaustive
    search exponent (2^strength operations).  The neutralizer protocol only
    needs the one-time key to resist factoring for ~2 RTTs (until the strong
    key ``Ks'`` arrives), so even modest margins are large in relative terms;
    E7 sweeps this across key sizes.
    """
    strength = symmetric_equivalent_bits(rsa_bits)
    return (2.0 ** strength) / float(attacker_ops_per_second)


def encryption_cost_multiplications(public_exponent: int, bits: int) -> int:
    """Number of modular multiplications for one public-key encryption.

    Square-and-multiply costs ``floor(log2 e)`` squarings plus one
    multiplication per set bit (minus the leading one).  For ``e = 3`` this is
    2 — the figure the paper quotes.
    """
    if public_exponent < 2:
        raise ValueError("exponent must be >= 2")
    squarings = public_exponent.bit_length() - 1
    multiplications = bin(public_exponent).count("1") - 1
    return squarings + multiplications


def decryption_cost_multiplications(bits: int) -> int:
    """Approximate modular multiplications for one CRT private-key operation.

    Each half-size exponentiation costs ~1.5 * (bits/2) multiplications; CRT
    runs two of them.  Used by the analytical cost model that scales the
    measured benchmark numbers in EXPERIMENTS.md.
    """
    return int(2 * 1.5 * (bits / 2))
