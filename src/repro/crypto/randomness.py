"""Deterministic randomness for protocol simulation.

The neutralizer protocol needs nonces, one-time RSA keys and master keys.  In
a reproduction library, determinism matters more than cryptographic strength:
every experiment must be replayable from a seed.  :class:`DeterministicRandom`
wraps :class:`random.Random` with byte/nonce helpers and is threaded through
every component that needs randomness.  For callers that explicitly want OS
entropy (e.g. when using the library outside the simulator), ``SystemRandom``
mirrors the same interface on top of :func:`os.urandom`.
"""

from __future__ import annotations

import os
import random
from typing import Iterable


class RandomSource:
    """Interface shared by deterministic and system-entropy sources."""

    def random_bytes(self, length: int) -> bytes:
        raise NotImplementedError

    def random_int(self, bits: int) -> int:
        """Return a uniformly random integer with exactly ``bits`` bits set as width."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        value = int.from_bytes(self.random_bytes((bits + 7) // 8), "big")
        # Clamp to the requested width and force the top bit so the result
        # always has the full width (needed by prime generation).
        value &= (1 << bits) - 1
        value |= 1 << (bits - 1)
        return value

    def random_below(self, upper: int) -> int:
        """Return a uniform integer in ``[0, upper)``."""
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        bits = upper.bit_length()
        while True:
            candidate = int.from_bytes(self.random_bytes((bits + 7) // 8), "big")
            candidate &= (1 << bits) - 1
            if candidate < upper:
                return candidate

    def random_range(self, lower: int, upper: int) -> int:
        """Return a uniform integer in ``[lower, upper)``."""
        if upper <= lower:
            raise ValueError("empty range")
        return lower + self.random_below(upper - lower)

    def nonce(self, length: int = 8) -> bytes:
        """Return a fresh nonce of ``length`` bytes (paper uses a 64-bit nonce)."""
        return self.random_bytes(length)

    def choice(self, items: Iterable):
        """Return a uniformly random element of ``items``."""
        seq = list(items)
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.random_below(len(seq))]

    def shuffle(self, items: list) -> list:
        """Return a new list with the elements of ``items`` shuffled."""
        result = list(items)
        for i in range(len(result) - 1, 0, -1):
            j = self.random_below(i + 1)
            result[i], result[j] = result[j], result[i]
        return result


class DeterministicRandom(RandomSource):
    """Seeded random source; identical seeds yield identical byte streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    def random_bytes(self, length: int) -> bytes:
        if length < 0:
            raise ValueError("length must be non-negative")
        return self._rng.randbytes(length)

    def fork(self, label: str) -> "DeterministicRandom":
        """Return an independent child stream derived from this seed and a label.

        Components that are created dynamically (one per host, one per flow)
        fork the experiment-level source so that adding a host does not
        perturb the random stream seen by every other host.
        """
        child_seed = hash((self._seed, label)) & 0xFFFFFFFFFFFFFFFF
        return DeterministicRandom(child_seed)

    def random_float(self) -> float:
        """Return a uniform float in [0, 1) (used by workload generators)."""
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        """Return an exponentially distributed inter-arrival time."""
        return self._rng.expovariate(rate)


class SystemRandom(RandomSource):
    """Random source backed by :func:`os.urandom` for non-simulated use."""

    def random_bytes(self, length: int) -> bytes:
        if length < 0:
            raise ValueError("length must be non-negative")
        return os.urandom(length)

    def random_float(self) -> float:
        return int.from_bytes(os.urandom(7), "big") / float(1 << 56)

    def expovariate(self, rate: float) -> float:
        import math

        u = self.random_float()
        return -math.log(1.0 - u) / rate


#: Default source used when a component is not handed one explicitly.
DEFAULT_SOURCE = DeterministicRandom(seed=2006)
