"""Pure-Python AES-128 block cipher (FIPS-197).

The paper's neutralizer uses "128-bit AES for both hashing and
encryption/decryption" on the data path: the destination address in the shim
header is AES-encrypted under the per-source key ``Ks``, and the keyed hash
that derives ``Ks`` from the master key can itself be built from AES (CBC-MAC)
so a hardware implementation needs only one primitive.

This module is the reference implementation used by the protocol tests; the
benchmarks may swap in the accelerated backend (see :mod:`repro.crypto.backend`)
so that the vanilla-vs-neutralized forwarding ratio is not dominated by Python
interpreter overhead.  Block-level outputs of both backends are identical and
are cross-checked in the test suite against the FIPS-197 vectors.
"""

from __future__ import annotations

from ..exceptions import KeySizeError

BLOCK_SIZE = 16  # bytes
KEY_SIZE = 16  # AES-128 only; the paper uses 128-bit keys throughout
_ROUNDS = 10

# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def _build_sbox() -> tuple[list[int], list[int]]:
    """Construct the AES S-box and its inverse from GF(2^8) arithmetic.

    Building the table (instead of hard-coding 256 literals) keeps the module
    self-describing and gives the test suite an independent check: the
    standard's published spot values must match what the construction yields.
    """
    # Multiplicative inverse in GF(2^8) via exponentiation tables.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by generator 0x03
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def gf_inverse(value: int) -> int:
        if value == 0:
            return 0
        return exp[255 - log[value]]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = gf_inverse(value)
        # Affine transformation.
        result = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            result |= b << bit
        sbox[value] = result
        inv_sbox[result] = value
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two bytes in GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class AesCipher:
    """AES-128 block cipher bound to a single 16-byte key.

    Instances are immutable after construction; the expanded key schedule is
    computed once so repeated block operations (the per-packet fast path) do
    not repeat key expansion.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise KeySizeError(f"AES-128 requires a {KEY_SIZE}-byte key, got {len(key)}")
        self._key = bytes(key)
        self._round_keys = self._expand_key(self._key)

    @property
    def key(self) -> bytes:
        """The raw key this cipher was constructed with."""
        return self._key

    # -- key schedule -------------------------------------------------------

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """Expand the key into 11 round keys of 16 bytes each."""
        words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (_ROUNDS + 1)):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        round_keys = []
        for r in range(_ROUNDS + 1):
            round_keys.append([b for word in words[4 * r:4 * r + 4] for b in word])
        return round_keys

    # -- round functions ----------------------------------------------------

    @staticmethod
    def _add_round_key(state: list[int], round_key: list[int]) -> list[int]:
        return [s ^ k for s, k in zip(state, round_key)]

    @staticmethod
    def _sub_bytes(state: list[int]) -> list[int]:
        return [_SBOX[b] for b in state]

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> list[int]:
        return [_INV_SBOX[b] for b in state]

    @staticmethod
    def _shift_rows(state: list[int]) -> list[int]:
        # State is column-major: state[row + 4*col].
        out = list(state)
        for row in range(1, 4):
            values = [state[row + 4 * col] for col in range(4)]
            values = values[row:] + values[:row]
            for col in range(4):
                out[row + 4 * col] = values[col]
        return out

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> list[int]:
        out = list(state)
        for row in range(1, 4):
            values = [state[row + 4 * col] for col in range(4)]
            values = values[-row:] + values[:-row]
            for col in range(4):
                out[row + 4 * col] = values[col]
        return out

    @staticmethod
    def _mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col:4 * col + 4]
            out[4 * col + 0] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
            out[4 * col + 1] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
            out[4 * col + 2] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
            out[4 * col + 3] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)
        return out

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> list[int]:
        out = [0] * 16
        for col in range(4):
            a = state[4 * col:4 * col + 4]
            out[4 * col + 0] = (
                _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11) ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
            )
            out[4 * col + 1] = (
                _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14) ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
            )
            out[4 * col + 2] = (
                _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9) ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
            )
            out[4 * col + 3] = (
                _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13) ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)
            )
        return out

    # -- block operations ----------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = self._add_round_key(list(block), self._round_keys[0])
        for r in range(1, _ROUNDS):
            state = self._sub_bytes(state)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            state = self._add_round_key(state, self._round_keys[r])
        state = self._sub_bytes(state)
        state = self._shift_rows(state)
        state = self._add_round_key(state, self._round_keys[_ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = self._add_round_key(list(block), self._round_keys[_ROUNDS])
        for r in range(_ROUNDS - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = self._inv_sub_bytes(state)
            state = self._add_round_key(state, self._round_keys[r])
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = self._inv_sub_bytes(state)
        state = self._add_round_key(state, self._round_keys[0])
        return bytes(state)
