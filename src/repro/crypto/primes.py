"""Prime generation and primality testing for the from-scratch RSA substrate.

The paper's key-setup protocol relies on *short* one-time RSA keys (512 bits)
so that the public-key operation at the neutralizer is cheap.  Generating
512-bit keys needs 256-bit primes, which Miller-Rabin handles comfortably in
pure Python.  The module also exposes small-prime trial division because it
removes ~75 % of candidates before the expensive Miller-Rabin rounds.
"""

from __future__ import annotations

from typing import Optional

from .randomness import DEFAULT_SOURCE, RandomSource

#: Primes below 1000, used for fast trial division of candidates.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
    317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409,
    419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499,
    503, 509, 521, 523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601,
    607, 613, 617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691,
    701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907,
    911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
]

#: Deterministic Miller-Rabin witnesses: this set is sufficient to make the
#: test *exact* (no false positives) for every integer below 3.3e24, far above
#: anything trial-divided candidates of the sizes we generate could fool; for
#: larger candidates they act as 13 strong rounds, error < 4^-13.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]


def _miller_rabin_round(n: int, a: int) -> bool:
    """Return ``True`` if ``n`` passes a Miller-Rabin round with witness ``a``."""
    if n % a == 0:
        return n == a
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 13, rng: Optional[RandomSource] = None) -> bool:
    """Return ``True`` if ``n`` is prime with overwhelming probability.

    The first rounds use the deterministic witness set; additional rounds (if
    ``rounds`` exceeds the witness count) use random bases from ``rng``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    witnesses = list(_DETERMINISTIC_WITNESSES[:rounds])
    if rounds > len(witnesses):
        source = rng or DEFAULT_SOURCE
        for _ in range(rounds - len(witnesses)):
            witnesses.append(source.random_range(2, n - 1))
    return all(_miller_rabin_round(n, a) for a in witnesses)


def generate_prime(
    bits: int,
    rng: Optional[RandomSource] = None,
    *,
    avoid_residue: Optional[tuple[int, int]] = None,
) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    ``avoid_residue=(e, r)`` rejects candidates ``p`` with ``p % e == r``;
    RSA key generation uses it to guarantee ``gcd(e, p - 1) == 1`` for the
    fixed public exponent (the paper suggests e=3 for two-multiplication
    encryption).
    """
    if bits < 8:
        raise ValueError("refusing to generate primes below 8 bits")
    source = rng or DEFAULT_SOURCE
    while True:
        candidate = source.random_int(bits) | 1  # force odd and full width
        if avoid_residue is not None:
            modulus, residue = avoid_residue
            if candidate % modulus == residue:
                continue
        if any(candidate % p == 0 for p in _SMALL_PRIMES if p < candidate):
            continue
        if is_probable_prime(candidate):
            return candidate


def generate_safe_exponent_prime(bits: int, public_exponent: int,
                                 rng: Optional[RandomSource] = None) -> int:
    """Generate a prime ``p`` such that ``gcd(public_exponent, p - 1) == 1``."""
    source = rng or DEFAULT_SOURCE
    while True:
        p = generate_prime(bits, source, avoid_residue=(public_exponent, 1))
        if (p - 1) % public_exponent != 0:
            return p
