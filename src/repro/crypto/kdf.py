"""Key derivation and keyed hashing for the stateless neutralizer.

The heart of the paper's statelessness claim is the derivation

    Ks = hash(KM, nonce, srcIP)

(§3.2): the neutralizer never stores per-source keys, it *recomputes* them
from the packet's clear-text nonce and source address plus its own master key.
Any neutralizer in the domain that shares ``KM`` can do the same, which is
what preserves IP's anycast fault-tolerance.

Two keyed-hash constructions are provided:

* :func:`derive_symmetric_key` — the production construction, HMAC-SHA256
  truncated to 128 bits (fast in Python because :mod:`hashlib` is C).
* :func:`derive_symmetric_key_aes` — the paper's "AES for hashing" variant
  built on CBC-MAC, so the cost model of a hardware neutralizer (one AES core
  for everything) can be measured in E3.

Both are deterministic functions of ``(master_key, nonce, source)`` and the
test suite checks they never collide across distinct inputs in property tests.
"""

from __future__ import annotations

import hashlib
import hmac

from .aes import KEY_SIZE
from .backend import get_cipher
from .modes import cbc_mac

#: Length in bytes of derived symmetric keys (128-bit AES keys, per the paper).
DERIVED_KEY_LEN = KEY_SIZE


def sha256(data: bytes) -> bytes:
    """SHA-256 digest helper used by signatures and e2e key fingerprints."""
    return hashlib.sha256(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 of ``data`` under ``key``."""
    return hmac.new(key, data, hashlib.sha256).digest()


def _encode_inputs(nonce: bytes, source_address: bytes) -> bytes:
    """Unambiguously encode the derivation inputs (length-prefixed)."""
    return (
        len(nonce).to_bytes(2, "big")
        + nonce
        + len(source_address).to_bytes(2, "big")
        + source_address
    )


def derive_symmetric_key(master_key: bytes, nonce: bytes, source_address: bytes) -> bytes:
    """Derive ``Ks = hash(KM, nonce, srcIP)`` (HMAC construction).

    Parameters
    ----------
    master_key:
        The neutralizer's (epoch-scoped) master key ``KM``.
    nonce:
        The nonce chosen by the neutralizer and echoed in clear text in every
        data packet so any neutralizer sharing ``KM`` can recompute ``Ks``.
    source_address:
        Packed bytes of the outside source's IP address.  Binding the key to
        the source address means a different source replaying someone else's
        nonce derives a different key.
    """
    digest = hmac_sha256(master_key, _encode_inputs(nonce, source_address))
    return digest[:DERIVED_KEY_LEN]


def derive_symmetric_key_aes(
    master_key: bytes, nonce: bytes, source_address: bytes, backend: str | None = None
) -> bytes:
    """Derive ``Ks`` with the paper's AES-only construction (CBC-MAC).

    Functionally interchangeable with :func:`derive_symmetric_key`; exists so
    the E3 crypto benchmark can report the cost of a single-primitive
    (hardware-friendly) neutralizer as the paper's prototype did.
    """
    if len(master_key) != KEY_SIZE:
        raise ValueError("the AES-based KDF requires a 16-byte master key")
    cipher = get_cipher(master_key, backend=backend)
    return cbc_mac(cipher, _encode_inputs(nonce, source_address))[:DERIVED_KEY_LEN]


def integrity_tag(key: bytes, data: bytes, length: int = 8) -> bytes:
    """Short integrity tag over shim-header fields.

    The paper does not specify shim integrity explicitly; we add a truncated
    HMAC so that a corrupted or forged encrypted-destination field is detected
    at the neutralizer instead of causing misrouting.  The tag length is a
    constructor knob because it contributes to the neutralized packet size
    (E2 reproduces the 112-byte figure with the default 8-byte tag excluded).
    """
    if length < 4 or length > 32:
        raise ValueError("tag length must be between 4 and 32 bytes")
    return hmac_sha256(key, data)[:length]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Constant-time comparison for tags and keys."""
    return hmac.compare_digest(a, b)
