"""Selectable AES backends: pure-Python reference vs accelerated.

The paper's throughput numbers were measured with OpenSSL's AES on an Opteron.
Our reference AES (:mod:`repro.crypto.aes`) is bit-exact but runs at Python
speed, which would distort the *ratio* between vanilla forwarding and
neutralized forwarding that experiment E2 reproduces.  When the optional
``cryptography`` wheel is importable we therefore expose an accelerated
backend that uses its AES-ECB primitive for single-block operations; protocol
code never notices the difference because both backends expose the same
``encrypt_block`` / ``decrypt_block`` interface.

Backend selection is explicit (``get_cipher(key, backend="pure")``) with a
process-wide default that the benchmark harness flips to "fast" when
available.  Tests always pin the backend they mean to exercise.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import CryptoError
from .aes import BLOCK_SIZE, KEY_SIZE, AesCipher

try:  # pragma: no cover - exercised indirectly depending on environment
    from cryptography.hazmat.primitives.ciphers import Cipher as _CgCipher
    from cryptography.hazmat.primitives.ciphers.algorithms import AES as _CgAES
    from cryptography.hazmat.primitives.ciphers.modes import ECB as _CgECB

    _HAVE_CRYPTOGRAPHY = True
except Exception:  # pragma: no cover
    _HAVE_CRYPTOGRAPHY = False


PURE_BACKEND = "pure"
FAST_BACKEND = "fast"

_default_backend = PURE_BACKEND


class FastAesCipher:
    """AES-128 single-block cipher backed by the ``cryptography`` wheel.

    Only ECB single-block operations are used; all modes are still composed
    by :mod:`repro.crypto.modes` so the protocol logic is identical across
    backends.
    """

    def __init__(self, key: bytes) -> None:
        if not _HAVE_CRYPTOGRAPHY:
            raise CryptoError("the 'cryptography' package is not available")
        if len(key) != KEY_SIZE:
            raise CryptoError(f"AES-128 requires a {KEY_SIZE}-byte key")
        self._key = bytes(key)
        cipher = _CgCipher(_CgAES(self._key), _CgECB())
        self._encryptor = cipher.encryptor()
        self._decryptor = cipher.decryptor()

    @property
    def key(self) -> bytes:
        """The raw key this cipher was constructed with."""
        return self._key

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes")
        return self._encryptor.update(block)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes")
        return self._decryptor.update(block)


def fast_backend_available() -> bool:
    """Return ``True`` when the accelerated backend can be used."""
    return _HAVE_CRYPTOGRAPHY


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend ("pure" or "fast")."""
    global _default_backend
    if name not in (PURE_BACKEND, FAST_BACKEND):
        raise ValueError(f"unknown backend {name!r}")
    if name == FAST_BACKEND and not _HAVE_CRYPTOGRAPHY:
        raise CryptoError("fast backend requested but 'cryptography' is not installed")
    _default_backend = name


def get_default_backend() -> str:
    """Return the name of the current process-wide default backend."""
    return _default_backend


def get_cipher(key: bytes, backend: Optional[str] = None):
    """Return an AES cipher for ``key`` on the requested (or default) backend."""
    chosen = backend or _default_backend
    if chosen == PURE_BACKEND:
        return AesCipher(key)
    if chosen == FAST_BACKEND:
        return FastAesCipher(key)
    raise ValueError(f"unknown backend {chosen!r}")
