"""Cryptographic substrate for the net-neutrality reproduction.

Everything the neutralizer protocol needs is implemented from scratch here:
prime generation and RSA (for the short one-time key-setup keys and the strong
end-to-end keys), AES-128 with CTR/CBC/CBC-MAC modes (for the shim header and
payload), and the stateless key-derivation function ``Ks = hash(KM, nonce,
srcIP)``.  An accelerated AES backend based on the optional ``cryptography``
wheel can be selected for benchmarks; outputs are identical.
"""

from .aes import BLOCK_SIZE, KEY_SIZE, AesCipher
from .backend import (
    FAST_BACKEND,
    PURE_BACKEND,
    FastAesCipher,
    fast_backend_available,
    get_cipher,
    get_default_backend,
    set_default_backend,
)
from .kdf import (
    DERIVED_KEY_LEN,
    constant_time_equal,
    derive_symmetric_key,
    derive_symmetric_key_aes,
    hmac_sha256,
    integrity_tag,
    sha256,
)
from .modes import cbc_decrypt, cbc_encrypt, cbc_mac, ctr_decrypt, ctr_encrypt
from .primes import generate_prime, is_probable_prime
from .randomness import DEFAULT_SOURCE, DeterministicRandom, RandomSource, SystemRandom
from .rsa import (
    DEFAULT_PUBLIC_EXPONENT,
    SUPPORTED_KEY_BITS,
    RsaKeyPair,
    RsaPrivateKey,
    RsaPublicKey,
    decryption_cost_multiplications,
    encryption_cost_multiplications,
    estimate_factoring_cost,
    generate_keypair,
    symmetric_equivalent_bits,
)

__all__ = [
    "BLOCK_SIZE",
    "KEY_SIZE",
    "AesCipher",
    "FastAesCipher",
    "PURE_BACKEND",
    "FAST_BACKEND",
    "fast_backend_available",
    "get_cipher",
    "get_default_backend",
    "set_default_backend",
    "DERIVED_KEY_LEN",
    "constant_time_equal",
    "derive_symmetric_key",
    "derive_symmetric_key_aes",
    "hmac_sha256",
    "integrity_tag",
    "sha256",
    "cbc_decrypt",
    "cbc_encrypt",
    "cbc_mac",
    "ctr_decrypt",
    "ctr_encrypt",
    "generate_prime",
    "is_probable_prime",
    "DEFAULT_SOURCE",
    "DeterministicRandom",
    "RandomSource",
    "SystemRandom",
    "DEFAULT_PUBLIC_EXPONENT",
    "SUPPORTED_KEY_BITS",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "decryption_cost_multiplications",
    "encryption_cost_multiplications",
    "estimate_factoring_cost",
    "generate_keypair",
    "symmetric_equivalent_bits",
]
