"""Block-cipher modes used by the neutralizer data path.

Three modes are needed by the protocol:

* **CTR** — encrypting variable-length fields (the destination address in the
  shim header, the anonymized source address on the return path) without
  padding overhead; the per-packet nonce doubles as the counter IV.
* **CBC** with PKCS#7 padding — bulk payload encryption for the e2e layer.
* **CBC-MAC** — the keyed hash the paper builds from AES ("We use 128-bit AES
  for both hashing and encryption/decryption"), used to derive ``Ks`` from the
  master key and to protect shim-header integrity.

Each mode takes a *block cipher object* exposing ``encrypt_block`` /
``decrypt_block`` so both the pure-Python AES and the accelerated backend can
be used interchangeably.
"""

from __future__ import annotations

from ..exceptions import DecryptionError, PaddingError
from .aes import BLOCK_SIZE


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _counter_block(nonce: bytes, counter: int) -> bytes:
    """Build a 16-byte counter block from an up-to-8-byte nonce and a counter."""
    nonce_part = nonce[:8].ljust(8, b"\x00")
    return nonce_part + counter.to_bytes(8, "big")


def ctr_encrypt(cipher, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt ``plaintext`` in CTR mode keyed by ``cipher`` with ``nonce``.

    CTR is length-preserving, which matters for the shim header: an encrypted
    IPv4 address stays 4 bytes (plus the alignment the header format chooses),
    keeping the paper's 112-byte neutralized packet size reproducible.
    """
    out = bytearray()
    for counter in range((len(plaintext) + BLOCK_SIZE - 1) // BLOCK_SIZE):
        keystream = cipher.encrypt_block(_counter_block(nonce, counter))
        chunk = plaintext[counter * BLOCK_SIZE:(counter + 1) * BLOCK_SIZE]
        out.extend(_xor_bytes(chunk, keystream[:len(chunk)]))
    return bytes(out)


def ctr_decrypt(cipher, nonce: bytes, ciphertext: bytes) -> bytes:
    """CTR decryption (identical to encryption)."""
    return ctr_encrypt(cipher, nonce, ciphertext)


def _pkcs7_pad(data: bytes) -> bytes:
    pad_len = BLOCK_SIZE - (len(data) % BLOCK_SIZE)
    return data + bytes([pad_len]) * pad_len


def _pkcs7_unpad(data: bytes) -> bytes:
    if not data or len(data) % BLOCK_SIZE != 0:
        raise PaddingError("CBC ciphertext is not block aligned")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > BLOCK_SIZE:
        raise PaddingError("invalid PKCS#7 padding length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("inconsistent PKCS#7 padding bytes")
    return data[:-pad_len]


def cbc_encrypt(cipher, iv: bytes, plaintext: bytes) -> bytes:
    """Encrypt in CBC mode with PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    padded = _pkcs7_pad(plaintext)
    out = bytearray()
    previous = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        block = _xor_bytes(padded[i:i + BLOCK_SIZE], previous)
        encrypted = cipher.encrypt_block(block)
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_decrypt(cipher, iv: bytes, ciphertext: bytes) -> bytes:
    """Decrypt CBC ciphertext and strip PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    if len(ciphertext) % BLOCK_SIZE != 0:
        raise DecryptionError("CBC ciphertext length is not a multiple of the block size")
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i:i + BLOCK_SIZE]
        decrypted = cipher.decrypt_block(block)
        out.extend(_xor_bytes(decrypted, previous))
        previous = block
    return _pkcs7_unpad(bytes(out))


def cbc_mac(cipher, message: bytes) -> bytes:
    """Compute a CBC-MAC tag over ``message``.

    The message is length-prefixed before MACing, which closes the classic
    CBC-MAC length-extension weakness for variable-length inputs and lets the
    key-derivation function feed structured input (master key, nonce, source
    address) without ambiguity.
    """
    prefixed = len(message).to_bytes(8, "big") + message
    padded = prefixed + b"\x00" * ((-len(prefixed)) % BLOCK_SIZE)
    tag = b"\x00" * BLOCK_SIZE
    for i in range(0, len(padded), BLOCK_SIZE):
        tag = cipher.encrypt_block(_xor_bytes(tag, padded[i:i + BLOCK_SIZE]))
    return tag
