"""Small unit-conversion helpers used across the simulator and benchmarks.

The simulator keeps time in seconds (floats) and sizes in bytes (ints).  These
helpers exist so that experiment scripts read naturally (``mbps(100)``,
``msec(20)``) instead of sprinkling powers of ten around.
"""

from __future__ import annotations

#: Bits per byte; defined once so packet/rate conversions stay consistent.
BITS_PER_BYTE = 8

#: One kilo/mega/giga in SI form (network rates are SI, not binary).
KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000


def kbps(value: float) -> float:
    """Return a rate expressed in kilobits/second as bits/second."""
    return float(value) * KILO


def mbps(value: float) -> float:
    """Return a rate expressed in megabits/second as bits/second."""
    return float(value) * MEGA


def gbps(value: float) -> float:
    """Return a rate expressed in gigabits/second as bits/second."""
    return float(value) * GIGA


def usec(value: float) -> float:
    """Return a duration expressed in microseconds as seconds."""
    return float(value) / MEGA


def msec(value: float) -> float:
    """Return a duration expressed in milliseconds as seconds."""
    return float(value) / KILO


def seconds(value: float) -> float:
    """Identity helper; lets experiment configs be explicit about units."""
    return float(value)


def minutes(value: float) -> float:
    """Return a duration expressed in minutes as seconds."""
    return float(value) * 60.0


def hours(value: float) -> float:
    """Return a duration expressed in hours as seconds."""
    return float(value) * 3600.0


def kilobytes(value: float) -> int:
    """Return a size expressed in kilobytes as bytes."""
    return int(value * KILO)


def megabytes(value: float) -> int:
    """Return a size expressed in megabytes as bytes."""
    return int(value * MEGA)


def transmission_time(size_bytes: int, rate_bps: float) -> float:
    """Time in seconds to serialize ``size_bytes`` onto a link of ``rate_bps``.

    A zero or negative rate means an infinitely fast link (used by in-process
    benchmark fixtures), for which the transmission time is zero.
    """
    if rate_bps <= 0:
        return 0.0
    return (size_bytes * BITS_PER_BYTE) / float(rate_bps)


def pps_to_bps(packets_per_second: float, packet_size_bytes: int) -> float:
    """Convert a packet rate to a bit rate for a fixed packet size."""
    return packets_per_second * packet_size_bytes * BITS_PER_BYTE


def bps_to_pps(rate_bps: float, packet_size_bytes: int) -> float:
    """Convert a bit rate to a packet rate for a fixed packet size."""
    if packet_size_bytes <= 0:
        raise ValueError("packet size must be positive")
    return rate_bps / (packet_size_bytes * BITS_PER_BYTE)
