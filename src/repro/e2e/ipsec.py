"""ESP-like end-to-end payload protection.

The paper treats end-to-end encryption "as a black box" and points at IPsec.
Our black box is a small ESP-style encapsulation: an SPI identifying the
security association, a sequence number, an IV, AES-CBC ciphertext and an
HMAC integrity tag.  It hides packet contents and application types from every
on-path ISP — the first of the two techniques the design combines (§3) — while
the neutralizer hides the non-customer address, the second technique.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from ..crypto.backend import get_cipher
from ..crypto.kdf import constant_time_equal, hmac_sha256
from ..crypto.modes import cbc_decrypt, cbc_encrypt
from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..exceptions import DecryptionError, SignatureError

ESP_HEADER_LEN = 8  # SPI (4) + sequence number (4)
ESP_IV_LEN = 16
ESP_ICV_LEN = 12  # truncated HMAC-SHA256, as in RFC 4868 style truncation


@dataclass
class EspSecurityAssociation:
    """One direction of an ESP security association."""

    spi: int
    encryption_key: bytes
    integrity_key: bytes
    backend: Optional[str] = None
    _next_sequence: int = field(default=1, init=False)
    #: Highest sequence number accepted so far (simple anti-replay window).
    _highest_seen: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0 < self.spi <= 0xFFFFFFFF:
            raise ValueError("SPI must fit 32 bits and be non-zero")
        if len(self.encryption_key) != 16:
            raise ValueError("encryption key must be 16 bytes (AES-128)")
        if len(self.integrity_key) < 16:
            raise ValueError("integrity key must be at least 16 bytes")

    def protect(self, plaintext: bytes, rng: Optional[RandomSource] = None) -> bytes:
        """Encrypt and authenticate ``plaintext`` into an ESP payload."""
        source = rng or DEFAULT_SOURCE
        sequence = self._next_sequence
        self._next_sequence += 1
        iv = source.random_bytes(ESP_IV_LEN)
        cipher = get_cipher(self.encryption_key, backend=self.backend)
        ciphertext = cbc_encrypt(cipher, iv, plaintext)
        header = struct.pack("!II", self.spi, sequence)
        body = header + iv + ciphertext
        icv = hmac_sha256(self.integrity_key, body)[:ESP_ICV_LEN]
        return body + icv

    def unprotect(self, payload: bytes) -> bytes:
        """Verify and decrypt an ESP payload produced by :meth:`protect`."""
        minimum = ESP_HEADER_LEN + ESP_IV_LEN + ESP_ICV_LEN
        if len(payload) < minimum:
            raise DecryptionError("ESP payload too short")
        body, icv = payload[:-ESP_ICV_LEN], payload[-ESP_ICV_LEN:]
        expected = hmac_sha256(self.integrity_key, body)[:ESP_ICV_LEN]
        if not constant_time_equal(icv, expected):
            raise SignatureError("ESP integrity check failed")
        spi, sequence = struct.unpack("!II", body[:ESP_HEADER_LEN])
        if spi != self.spi:
            raise DecryptionError(f"ESP SPI mismatch: got {spi}, expected {self.spi}")
        if sequence <= self._highest_seen:
            raise DecryptionError(f"ESP replay detected (sequence {sequence})")
        self._highest_seen = sequence
        iv = body[ESP_HEADER_LEN:ESP_HEADER_LEN + ESP_IV_LEN]
        ciphertext = body[ESP_HEADER_LEN + ESP_IV_LEN:]
        cipher = get_cipher(self.encryption_key, backend=self.backend)
        return cbc_decrypt(cipher, iv, ciphertext)

    def peek_spi(self, payload: bytes) -> int:
        """Return the SPI of an ESP payload without decrypting (receiver demux)."""
        if len(payload) < 4:
            raise DecryptionError("ESP payload too short to carry an SPI")
        return struct.unpack("!I", payload[:4])[0]


def overhead_bytes() -> int:
    """Fixed per-packet overhead of the ESP encapsulation (excluding CBC padding)."""
    return ESP_HEADER_LEN + ESP_IV_LEN + ESP_ICV_LEN
