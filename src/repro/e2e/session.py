"""End-to-end session establishment on top of the ESP encapsulation.

The paper's bootstrap (§3.1) gives the source the destination's public key via
DNS; the source then runs "standard end-to-end encryption".  Our handshake is
one round trip: the initiator generates fresh key material, encrypts it under
the responder's (strong, e.g. 1024-bit) RSA public key, and both sides derive
a pair of unidirectional security associations from it.

The session object also carries the neutralizer *key-refresh piggyback*: when
the destination returns the fresh ``(nonce', Ks')`` the neutralizer stamped
into a key-request packet (§3.2), it does so inside the protected payload of
this session, which is why the short one-time RSA key only ever protects the
first symmetric key for a couple of round-trip times.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..crypto.kdf import hmac_sha256
from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..crypto.rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey, generate_keypair
from ..exceptions import DecryptionError
from .ipsec import EspSecurityAssociation

#: Default size of the strong end-to-end RSA keys (the paper contrasts the
#: weak 512-bit one-time keys with "strong end-to-end encryption, e.g.
#: 1024-bit RSA encryption").
STRONG_KEY_BITS = 1024

_HANDSHAKE_SECRET_LEN = 32


def generate_host_keypair(
    bits: int = STRONG_KEY_BITS, rng: Optional[RandomSource] = None
) -> RsaKeyPair:
    """Generate a host's long-term key pair (published in DNS, §3.1)."""
    return generate_keypair(bits, rng)


def _derive_sas(secret: bytes, initiator_spi: int, responder_spi: int,
                backend: Optional[str] = None) -> Tuple[EspSecurityAssociation, EspSecurityAssociation]:
    """Derive the two unidirectional SAs from the handshake secret."""
    initiator_to_responder = EspSecurityAssociation(
        spi=initiator_spi,
        encryption_key=hmac_sha256(secret, b"i2r-enc")[:16],
        integrity_key=hmac_sha256(secret, b"i2r-int"),
        backend=backend,
    )
    responder_to_initiator = EspSecurityAssociation(
        spi=responder_spi,
        encryption_key=hmac_sha256(secret, b"r2i-enc")[:16],
        integrity_key=hmac_sha256(secret, b"r2i-int"),
        backend=backend,
    )
    return initiator_to_responder, responder_to_initiator


@dataclass
class E2eSession:
    """An established end-to-end session (one side's view)."""

    local_role: str  # "initiator" or "responder"
    send_sa: EspSecurityAssociation
    receive_sa: EspSecurityAssociation

    def protect(self, plaintext: bytes, rng: Optional[RandomSource] = None) -> bytes:
        """Encrypt application data for the peer."""
        return self.send_sa.protect(plaintext, rng)

    def unprotect(self, payload: bytes) -> bytes:
        """Decrypt application data from the peer."""
        return self.receive_sa.unprotect(payload)


class E2eInitiator:
    """The initiating side of the end-to-end handshake."""

    def __init__(self, rng: Optional[RandomSource] = None, backend: Optional[str] = None) -> None:
        self._rng = rng or DEFAULT_SOURCE
        self._backend = backend
        self._secret: Optional[bytes] = None
        self._spis: Optional[Tuple[int, int]] = None

    def create_handshake(self, responder_public_key: RsaPublicKey) -> bytes:
        """Build the handshake blob to send to the responder.

        The blob is ``RSA_responder(secret || spi_i || spi_r)``; it typically
        rides inside the first neutralized packet's payload.
        """
        secret = self._rng.random_bytes(_HANDSHAKE_SECRET_LEN)
        spi_i = self._rng.random_range(1, 0xFFFFFFFF)
        spi_r = self._rng.random_range(1, 0xFFFFFFFF)
        self._secret = secret
        self._spis = (spi_i, spi_r)
        plaintext = secret + struct.pack("!II", spi_i, spi_r)
        return responder_public_key.encrypt(plaintext, self._rng)

    def establish(self) -> E2eSession:
        """Return the initiator-side session (call after :meth:`create_handshake`)."""
        if self._secret is None or self._spis is None:
            raise DecryptionError("create_handshake must be called before establish")
        spi_i, spi_r = self._spis
        send_sa, receive_sa = _derive_sas(self._secret, spi_i, spi_r, self._backend)
        return E2eSession(local_role="initiator", send_sa=send_sa, receive_sa=receive_sa)


class E2eResponder:
    """The responding side of the end-to-end handshake."""

    def __init__(self, keypair: RsaKeyPair, backend: Optional[str] = None) -> None:
        self._keypair = keypair
        self._backend = backend

    @property
    def public_key(self) -> RsaPublicKey:
        """The public key to publish in DNS."""
        return self._keypair.public

    @property
    def private_key(self) -> RsaPrivateKey:
        """The matching private key (kept on the host)."""
        return self._keypair.private

    def accept_handshake(self, handshake: bytes) -> E2eSession:
        """Process the initiator's handshake blob and return the responder session."""
        plaintext = self._keypair.private.decrypt(handshake)
        if len(plaintext) != _HANDSHAKE_SECRET_LEN + 8:
            raise DecryptionError("malformed end-to-end handshake")
        secret = plaintext[:_HANDSHAKE_SECRET_LEN]
        spi_i, spi_r = struct.unpack("!II", plaintext[_HANDSHAKE_SECRET_LEN:])
        initiator_to_responder, responder_to_initiator = _derive_sas(
            secret, spi_i, spi_r, self._backend
        )
        return E2eSession(
            local_role="responder",
            send_sa=responder_to_initiator,
            receive_sa=initiator_to_responder,
        )


def sessions_from_secret(
    secret: bytes, backend: Optional[str] = None
) -> Tuple[E2eSession, E2eSession]:
    """Derive a deterministic session pair from a pre-shared secret.

    Used by the reverse-direction flow (§3.3): the inside customer already
    shares ``Ks`` with the neutralizer and transports it to the outside peer
    under that peer's public key, so both sides can derive matching security
    associations without a second handshake.  SPIs are derived from the secret
    so the two directions stay distinct.
    """
    if len(secret) < 16:
        raise DecryptionError("secret too short to derive a session")
    spi_i = 1 + (int.from_bytes(hmac_sha256(secret, b"spi-i")[:4], "big") % 0xFFFFFFFE)
    spi_r = 1 + (int.from_bytes(hmac_sha256(secret, b"spi-r")[:4], "big") % 0xFFFFFFFE)
    send_i, send_r = _derive_sas(secret, spi_i, spi_r, backend)
    initiator = E2eSession(local_role="initiator", send_sa=send_i, receive_sa=send_r)
    responder = E2eSession(local_role="responder", send_sa=send_r, receive_sa=send_i)
    return initiator, responder


def establish_pair(
    responder_keypair: RsaKeyPair, rng: Optional[RandomSource] = None,
    backend: Optional[str] = None,
) -> Tuple[E2eSession, E2eSession]:
    """Convenience helper: run the whole handshake in-process (for tests/apps)."""
    initiator = E2eInitiator(rng=rng, backend=backend)
    responder = E2eResponder(responder_keypair, backend=backend)
    handshake = initiator.create_handshake(responder_keypair.public)
    responder_session = responder.accept_handshake(handshake)
    initiator_session = initiator.establish()
    return initiator_session, responder_session
