"""End-to-end encryption substrate (the paper's IPsec black box)."""

from .ipsec import ESP_ICV_LEN, ESP_IV_LEN, EspSecurityAssociation, overhead_bytes
from .session import (
    STRONG_KEY_BITS,
    E2eInitiator,
    E2eResponder,
    E2eSession,
    establish_pair,
    generate_host_keypair,
    sessions_from_secret,
)

__all__ = [
    "ESP_ICV_LEN",
    "ESP_IV_LEN",
    "EspSecurityAssociation",
    "overhead_bytes",
    "STRONG_KEY_BITS",
    "E2eInitiator",
    "E2eResponder",
    "E2eSession",
    "establish_pair",
    "generate_host_keypair",
    "sessions_from_secret",
]
