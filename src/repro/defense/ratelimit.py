"""Stand-alone rate limiters used by neutralizers and experiments.

Pushback (see :mod:`repro.defense.pushback`) is the network-wide mechanism the
paper points at; a neutralizer can additionally protect itself locally by
bounding how many expensive key-setup operations it performs per source and in
total.  Because the box is stateless by design, the per-source limiter uses a
fixed-size count-min sketch rather than a per-source table, keeping memory
constant regardless of how many sources (or spoofed addresses) hit it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..crypto.kdf import hmac_sha256
from ..packet.addresses import IPv4Address
from ..qos.schedulers import TokenBucket


class GlobalRateLimiter:
    """A token bucket over operations per second (not bytes)."""

    def __init__(self, operations_per_second: float, burst: Optional[int] = None) -> None:
        if operations_per_second <= 0:
            raise ValueError("rate must be positive")
        burst_ops = burst if burst is not None else max(1, int(operations_per_second))
        # Reuse the byte-based bucket with 1 byte == 1 operation.
        self._bucket = TokenBucket(rate_bytes_per_second=operations_per_second,
                                   burst_bytes=burst_ops)
        self.allowed = 0
        self.denied = 0

    def allow(self, now: float) -> bool:
        """Consume one operation if the budget allows."""
        if self._bucket.allow(1, now):
            self.allowed += 1
            return True
        self.denied += 1
        return False


@dataclass
class _SketchRow:
    counters: List[float]
    last_decay: float


class PerSourceSketchLimiter:
    """Approximate per-source rate limiting in constant memory.

    A count-min sketch of exponentially-decayed packet counts: each source
    address hashes into one counter per row; the minimum across rows estimates
    the source's recent rate.  Over-estimation is possible (collisions) but
    never under-estimation, so an attacker cannot hide behind the sketch — at
    worst an unlucky legitimate source shares a counter with the attacker,
    which is the documented trade-off of keeping the box stateless.
    """

    def __init__(
        self,
        *,
        rows: int = 4,
        columns: int = 1024,
        limit_per_second: float = 10.0,
        decay_halflife_seconds: float = 1.0,
        salt: bytes = b"neutralizer-sketch",
    ) -> None:
        if rows < 1 or columns < 8:
            raise ValueError("sketch needs at least 1 row and 8 columns")
        if limit_per_second <= 0:
            raise ValueError("limit must be positive")
        self.rows = rows
        self.columns = columns
        self.limit_per_second = limit_per_second
        self.decay_halflife_seconds = decay_halflife_seconds
        self._salt = salt
        self._sketch = [_SketchRow(counters=[0.0] * columns, last_decay=0.0) for _ in range(rows)]
        self.allowed = 0
        self.denied = 0

    def _indices(self, source: IPv4Address) -> List[int]:
        digest = hmac_sha256(self._salt, source.packed)
        return [
            int.from_bytes(digest[4 * row:4 * row + 4], "big") % self.columns
            for row in range(self.rows)
        ]

    def _decay(self, row: _SketchRow, now: float) -> None:
        elapsed = now - row.last_decay
        if elapsed <= 0:
            return
        factor = 0.5 ** (elapsed / self.decay_halflife_seconds)
        row.counters = [value * factor for value in row.counters]
        row.last_decay = now

    def estimate(self, source: IPv4Address, now: float) -> float:
        """Estimated decayed packet count for ``source``."""
        estimates = []
        for row, index in zip(self._sketch, self._indices(source)):
            self._decay(row, now)
            estimates.append(row.counters[index])
        return min(estimates)

    def allow(self, source: IPv4Address, now: float) -> bool:
        """Record one packet from ``source`` and decide whether to serve it."""
        indices = self._indices(source)
        estimate = float("inf")
        for row, index in zip(self._sketch, indices):
            self._decay(row, now)
            row.counters[index] += 1.0
            estimate = min(estimate, row.counters[index])
        # With exponential decay at half-life h, a steady rate r converges to
        # roughly r * h / ln 2 in the counter; compare against that level.
        steady_state_limit = self.limit_per_second * self.decay_halflife_seconds / 0.693
        if estimate <= steady_state_limit:
            self.allowed += 1
            return True
        self.denied += 1
        return False

    def memory_entries(self) -> int:
        """Constant memory footprint in counters (rows x columns)."""
        return self.rows * self.columns
