"""DoS defenses available to a neutralizer: pushback and local rate limiting."""

from .pushback import (
    AggregateDetector,
    AggregateState,
    PushbackController,
    deploy_pushback,
    key_setup_aggregate,
)
from .ratelimit import GlobalRateLimiter, PerSourceSketchLimiter

__all__ = [
    "AggregateDetector",
    "AggregateState",
    "PushbackController",
    "deploy_pushback",
    "key_setup_aggregate",
    "GlobalRateLimiter",
    "PerSourceSketchLimiter",
]
