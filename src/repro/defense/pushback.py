"""Pushback: aggregate-based congestion control against DoS floods (§3.6).

"A neutralizer box may be subject to DoS attacks ... a neutralizer can invoke
DoS defense mechanisms such as pushback to get rid of attack traffic."  The
reference is Mahajan et al., *Controlling High Bandwidth Aggregates in the
Network*.  This module implements the parts the experiments need:

* an :class:`AggregateDetector` that watches the arrival rate of a traffic
  class (here: key-setup packets, identified without trusting source
  addresses — pushback's selling point under spoofing) and flags an aggregate
  when it exceeds a threshold;
* a :class:`PushbackController` that, once an aggregate is flagged, installs a
  rate limit for that aggregate locally and *pushes the request upstream* to
  the neighbouring routers the traffic arrived from, recursively, so the
  flood is dropped before it converges on the neutralizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..netsim.router import Router
from ..packet.packet import Packet
from ..qos.schedulers import TokenBucket

#: Classifier signature: returns the aggregate name a packet belongs to, or None.
AggregateClassifier = Callable[[Packet], Optional[str]]


def key_setup_aggregate(packet: Packet) -> Optional[str]:
    """Classify neutralizer key-setup packets as one aggregate (the E11 attack)."""
    from ..packet.headers import SHIM_TYPE_KEY_SETUP_REQUEST

    if packet.shim is not None and packet.shim.shim_type == SHIM_TYPE_KEY_SETUP_REQUEST:
        return "key-setup"
    return None


@dataclass
class AggregateState:
    """Observed state of one aggregate at one router."""

    name: str
    packets: int = 0
    bytes: int = 0
    window_start: float = 0.0
    limited: bool = False
    limiter: Optional[TokenBucket] = None


class AggregateDetector:
    """Sliding-window rate measurement per aggregate."""

    def __init__(self, window_seconds: float = 1.0,
                 threshold_pps: float = 1000.0) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window_seconds = window_seconds
        self.threshold_pps = threshold_pps
        self._aggregates: Dict[str, AggregateState] = {}

    def observe(self, name: str, packet: Packet, now: float) -> AggregateState:
        """Record one packet of an aggregate and return its current state."""
        state = self._aggregates.setdefault(name, AggregateState(name=name, window_start=now))
        if now - state.window_start >= self.window_seconds:
            state.packets = 0
            state.bytes = 0
            state.window_start = now
        state.packets += 1
        state.bytes += packet.size_bytes
        return state

    def is_misbehaving(self, state: AggregateState, now: float) -> bool:
        """Return ``True`` when the aggregate exceeds the configured rate."""
        elapsed = max(now - state.window_start, 1e-6)
        return state.packets / elapsed > self.threshold_pps

    def aggregates(self) -> List[AggregateState]:
        """All aggregates seen so far."""
        return list(self._aggregates.values())


class PushbackController:
    """Per-router pushback agent: local rate limiting + upstream propagation."""

    def __init__(
        self,
        router: Router,
        *,
        classifier: AggregateClassifier = key_setup_aggregate,
        detector: Optional[AggregateDetector] = None,
        limit_pps: float = 500.0,
        limit_packet_size: int = 200,
        max_depth: int = 2,
    ) -> None:
        self.router = router
        self.classifier = classifier
        self.detector = detector or AggregateDetector()
        self.limit_pps = limit_pps
        self.limit_packet_size = limit_packet_size
        self.max_depth = max_depth
        #: Upstream controllers (on neighbouring routers) the agent can push to.
        self.upstream: List["PushbackController"] = []
        self.counters: Dict[str, int] = {
            "packets_seen": 0,
            "packets_dropped": 0,
            "aggregates_limited": 0,
            "pushback_requests_sent": 0,
            "pushback_requests_received": 0,
        }
        self._installed = False

    # -- wiring -----------------------------------------------------------------------

    def install(self) -> "PushbackController":
        """Attach the agent as an ingress hook on its router."""
        if not self._installed:
            self.router.ingress_hooks.append(self._hook)
            self._installed = True
        return self

    def add_upstream(self, controller: "PushbackController") -> None:
        """Declare a neighbouring router's agent as upstream of this one."""
        if controller is not self and controller not in self.upstream:
            self.upstream.append(controller)

    # -- data path --------------------------------------------------------------------------

    def _hook(self, packet: Packet, router: Router, interface) -> Optional[Packet]:
        self.counters["packets_seen"] += 1
        name = self.classifier(packet)
        if name is None:
            return packet
        now = router.sim.now
        state = self.detector.observe(name, packet, now)
        if not state.limited and self.detector.is_misbehaving(state, now):
            self._activate_limit(state, depth=0)
        if state.limited and state.limiter is not None:
            if not state.limiter.allow(packet.size_bytes, now):
                self.counters["packets_dropped"] += 1
                return None
        return packet

    def _activate_limit(self, state: AggregateState, depth: int) -> None:
        state.limited = True
        state.limiter = TokenBucket(
            rate_bytes_per_second=self.limit_pps * self.limit_packet_size,
            burst_bytes=self.limit_pps * self.limit_packet_size,
        )
        self.counters["aggregates_limited"] += 1
        if depth < self.max_depth:
            self._push_upstream(state.name, depth + 1)

    def _push_upstream(self, aggregate_name: str, depth: int) -> None:
        for controller in self.upstream:
            self.counters["pushback_requests_sent"] += 1
            controller.receive_pushback(aggregate_name, depth)

    def receive_pushback(self, aggregate_name: str, depth: int) -> None:
        """Handle a pushback request from a downstream router."""
        self.counters["pushback_requests_received"] += 1
        state = self.detector._aggregates.setdefault(
            aggregate_name, AggregateState(name=aggregate_name, window_start=self.router.sim.now)
        )
        if not state.limited:
            self._activate_limit(state, depth)


def deploy_pushback(
    routers: List[Router],
    *,
    classifier: AggregateClassifier = key_setup_aggregate,
    threshold_pps: float = 1000.0,
    limit_pps: float = 500.0,
) -> List[PushbackController]:
    """Install pushback agents on a chain of routers, wiring upstream pointers.

    ``routers`` should be ordered from the protected resource outward (the
    first router is closest to the neutralizer); each agent treats the next
    router in the list as its upstream.
    """
    controllers = [
        PushbackController(
            router,
            classifier=classifier,
            detector=AggregateDetector(threshold_pps=threshold_pps),
            limit_pps=limit_pps,
        ).install()
        for router in routers
    ]
    for downstream, upstream in zip(controllers, controllers[1:]):
        downstream.add_upstream(upstream)
    return controllers
