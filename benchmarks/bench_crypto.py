"""E3 — raw crypto operation rates (paper: 2.35 M AES ops/s openssl-speed analogue)."""

from repro.analysis.experiments import run_crypto_rates
from repro.crypto import (
    AesCipher,
    DeterministicRandom,
    derive_symmetric_key,
    fast_backend_available,
    generate_keypair,
    get_cipher,
)

from conftest import emit

_RNG = DeterministicRandom(301)
_KEY = _RNG.random_bytes(16)
_BLOCK = _RNG.random_bytes(16)
_KEYPAIR = generate_keypair(512, _RNG)
_PAYLOAD = _RNG.random_bytes(24)
_CIPHERTEXT = _KEYPAIR.public.encrypt(_PAYLOAD, _RNG)


def test_e3_aes_block_pure(benchmark):
    """Reference AES-128 single-block encryption rate."""
    cipher = AesCipher(_KEY)
    benchmark(lambda: cipher.encrypt_block(_BLOCK))


def test_e3_aes_block_fast(benchmark):
    """Accelerated-backend AES-128 single-block encryption rate (if available)."""
    if not fast_backend_available():
        benchmark(lambda: None)
        return
    cipher = get_cipher(_KEY, backend="fast")
    benchmark(lambda: cipher.encrypt_block(_BLOCK))


def test_e3_ks_derivation(benchmark):
    """Stateless Ks = hash(KM, nonce, srcIP) derivation rate."""
    benchmark(lambda: derive_symmetric_key(_KEY, b"n" * 8, b"\x0a\x01\x00\x01"))


def test_e3_rsa512_encrypt(benchmark):
    """RSA-512 public-key encryption (e = 3), the neutralizer's key-setup cost."""
    benchmark(lambda: _KEYPAIR.public.encrypt(_PAYLOAD, _RNG))


def test_e3_rsa512_decrypt(benchmark):
    """RSA-512 private-key decryption (CRT), the source's key-setup cost."""
    benchmark(lambda: _KEYPAIR.private.decrypt(_CIPHERTEXT))


def test_e3_report(once):
    """Regenerate the E3 rates table."""
    result = once(run_crypto_rates, 800)
    emit(result.report)
    rates = result.rates
    assert rates["rsa-512 encrypt (e=3)"].per_second > rates["rsa-512 decrypt (CRT)"].per_second
