"""E14 — Monte-Carlo stochastic availability campaigns (acceptance: < 5 s).

The acceptance configuration is a seeded 10^6-client, 200-epoch, 32-replica
campaign with a target-utilization autoscaler: it must run end-to-end in
under five seconds and emit P50/P95/P99 availability plus per-replica
churn-vs-SLO numbers.  ``SCALE_BENCH_CLIENTS`` scales the population down
for CI smoke runs (e.g. ``SCALE_BENCH_CLIENTS=2000``); the default is the
full million.
"""

import os

from repro.analysis.experiments import run_stochastic_campaign
from repro.scale import (
    StochasticCampaignRunner,
    Telemetry,
    phase_breakdown,
    run_churn_slo_frontier,
)

from conftest import emit

_CLIENTS = int(os.environ.get("SCALE_BENCH_CLIENTS", "1000000"))
_SEED = 81


def test_e14_campaign_end_to_end(once, benchmark):
    """The acceptance target: 10^6 clients x 200 epochs x 32 replicas < 5 s."""
    telemetry = Telemetry()
    runner = StochasticCampaignRunner(
        clients=_CLIENTS, epochs=200, replicas=32, seed=_SEED,
        telemetry=telemetry,
    )
    result = once(runner.run)
    benchmark.extra_info["phases"] = phase_breakdown(telemetry)
    assert result.duration_seconds < 5.0
    assert len(result.records) == 32
    availability = result.availability
    assert availability.samples == 32 * 200
    # Low-tail semantics: the P99 is the availability 99% of epochs exceed.
    assert availability.p50 >= availability.p95 >= availability.p99
    assert len(result.churn_slo_points()) == 32
    emit(result.report)


def test_e14_same_seed_same_distributions(once):
    """Determinism at bench scale: rerunning the campaign changes nothing."""
    clients = min(_CLIENTS, 50_000)
    first = StochasticCampaignRunner(
        clients=clients, epochs=60, replicas=8, seed=_SEED).run()
    second = once(StochasticCampaignRunner(
        clients=clients, epochs=60, replicas=8, seed=_SEED).run)
    assert first.distributions == second.distributions


def test_e14_frontier(once):
    """The churn-vs-SLO frontier across autoscaler utilization targets."""
    result = once(
        run_churn_slo_frontier,
        targets=(0.45, 0.6, 0.75, 0.9),
        clients=min(_CLIENTS, 200_000), epochs=96, replicas=6, seed=_SEED,
    )
    assert len(result.points) == 4
    # Hotter operating points spend fewer dollars.
    assert result.points[-1].mean_cost_usd < result.points[0].mean_cost_usd
    emit(result.report)


def test_e14_report(once):
    """Regenerate the E14 wrapper report (the rows EXPERIMENTS.md quotes)."""
    result = once(
        run_stochastic_campaign,
        clients=min(_CLIENTS, 100_000), epochs=100, replicas=16, seed=_SEED,
    )
    assert result.distributions_ordered
    rendered = result.report.render()
    assert "E14" in rendered and "availability" in rendered
