"""E5 — residual discrimination against neutralized traffic (§3.6)."""

from repro.analysis.experiments import run_residual_discrimination

from conftest import emit


def test_e5_residual_discrimination(once):
    """Regenerate the E5 policy table (competitor MOS, collateral delivery, own-customer MOS)."""
    result = once(run_residual_discrimination, call_seconds=3.0)
    emit(result.report)
    arms = {arm.name: arm for arm in result.arms}
    # Targeting the competitor no longer works once traffic is neutralized.
    assert arms["target-competitor"].competitor_report.mos >= arms["none"].competitor_report.mos - 0.2
    # The blunt levers do hurt, but only by touching whole traffic classes.
    assert arms["throttle-encrypted"].competitor_report.mos < arms["none"].competitor_report.mos
    assert arms["throttle-encrypted"].collateral_delivery_ratio < arms["none"].collateral_delivery_ratio
