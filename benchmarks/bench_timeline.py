"""E13 — time-stepped fluid timelines (acceptance: 10^6 clients, 100 epochs, < 5 s).

``SCALE_BENCH_CLIENTS`` scales the headline population down for CI smoke
runs (e.g. ``SCALE_BENCH_CLIENTS=2000``); the default is the full million.
The catalogue benchmark is parametrized over every named scenario, so a
scenario added to the catalogue is exercised by CI automatically.
"""

import os

import pytest

from repro.analysis.experiments import run_timeline_catalogue
from repro.scale import (
    ClientPopulation,
    ConstantLoad,
    DiurnalLoad,
    FluidTimeline,
    Telemetry,
    phase_breakdown,
    provisioned_fleet,
)
from repro.scale.catalogue import run_scenario, scenario_names

from conftest import emit

_CLIENTS = int(os.environ.get("SCALE_BENCH_CLIENTS", "1000000"))
_SEED = 81
_EPOCHS = 100


def _diurnal_timeline(warm_start=True, telemetry=None):
    population = ClientPopulation(_CLIENTS, seed=_SEED)
    fleet = provisioned_fleet(population, 16, headroom=1.1)
    return FluidTimeline(
        population, fleet, epochs=_EPOCHS,
        load=DiurnalLoad(trough=0.35, peak=1.05),
        warm_start=warm_start, telemetry=telemetry,
    )


def _congested_timeline(warm_start=True):
    """Steady congested load: the regime where warm-start hint reuse fires
    (diurnal epochs change every demand, so min(prev, demands) rarely
    certifies there; the demand certificate covers their troughs instead)."""
    population = ClientPopulation(_CLIENTS, seed=_SEED)
    fleet = provisioned_fleet(population, 16, headroom=0.85)
    return FluidTimeline(
        population, fleet, epochs=_EPOCHS,
        load=ConstantLoad(1.0),
        warm_start=warm_start,
    )


def test_e13_diurnal_timeline_end_to_end(once, benchmark):
    """The acceptance target: population + fleet + 100 epochs in < 5 s."""
    telemetry = Telemetry()
    result = once(lambda: _diurnal_timeline(telemetry=telemetry).run())
    assert result.epochs == _EPOCHS
    assert result.n_clients == _CLIENTS
    assert result.wall_seconds < 5.0
    # Most epochs skip the fill via a verification fast path.
    assert result.fast_fraction > 0.5
    benchmark.extra_info["phases"] = phase_breakdown(telemetry)


def test_e13_telemetry_overhead(once):
    """The observability guard: tracing costs <= 5% wall on the timeline.

    The absolute 50 ms floor keeps smoke-scale runs (millisecond walls)
    from flaking on scheduler noise; at the full-scale configuration the
    5% term dominates.
    """
    disabled = _diurnal_timeline().run()
    telemetry = Telemetry()
    enabled = once(lambda: _diurnal_timeline(telemetry=telemetry).run())
    assert enabled.wall_seconds <= disabled.wall_seconds * 1.05 + 0.05
    # Telemetry observes, never participates: identical solver work.
    assert ([record.solver_iterations for record in enabled.records]
            == [record.solver_iterations for record in disabled.records])


def test_e13_obs_overhead(once):
    """The event-stream guard: obs + detectors cost <= 5% wall.

    Same shape as the telemetry guard above: the structured event stream
    with the full detector suite attached must stay within 5% of the
    bare run (plus the 50 ms smoke-scale noise floor), and the stream
    must observe without participating — identical solver work.
    """
    from repro.scale import attach_detectors

    disabled = _diurnal_timeline().run()
    telemetry = Telemetry(trace=False, events=True)
    attach_detectors(telemetry.events)
    enabled = once(lambda: _diurnal_timeline(telemetry=telemetry).run())
    assert enabled.wall_seconds <= disabled.wall_seconds * 1.05 + 0.05
    assert ([record.solver_iterations for record in enabled.records]
            == [record.solver_iterations for record in disabled.records])
    # One epoch event per epoch plus the lifecycle pair.
    assert len(telemetry.events) >= _EPOCHS + 2


def test_e13_monitor_overhead(once, benchmark):
    """The live-monitor guard: an attached HTTP/SSE monitor costs <= 5% wall.

    The monitor mirrors every canonical event into its HTTP views while
    the timeline runs, so this bounds the subscription + mirror cost on
    top of the full observability stack (trace + events + detectors).
    Same noise floor as the guards above; same observe-don't-participate
    assertion — identical solver work, byte-identical canonical stream.
    """
    from repro.scale import MonitorServer, attach_detectors

    disabled = _diurnal_timeline().run()
    telemetry = Telemetry(trace=True, events=True)
    attach_detectors(telemetry.events)
    with MonitorServer.attach(telemetry) as monitor:
        enabled = once(lambda: _diurnal_timeline(telemetry=telemetry).run())
        mirrored = monitor.progress()["events"]["total"]
    assert enabled.wall_seconds <= disabled.wall_seconds * 1.05 + 0.05
    assert ([record.solver_iterations for record in enabled.records]
            == [record.solver_iterations for record in disabled.records])
    # The monitor mirrored the whole canonical stream, live.
    assert mirrored == len(telemetry.events)
    assert mirrored >= _EPOCHS + 2
    benchmark.extra_info["phases"] = phase_breakdown(telemetry)


def test_e13_epoch_solves_warm(benchmark):
    """Per-epoch solve throughput with warm-start hint reuse."""
    timeline = _congested_timeline(warm_start=True)
    result = benchmark(timeline.run)
    assert result.warm_fraction > 0.9


def test_e13_epoch_solves_cold(benchmark):
    """The same congested timeline refilled every epoch, for the ratio."""
    timeline = _congested_timeline(warm_start=False)
    result = benchmark(timeline.run)
    assert result.warm_fraction == 0.0


def test_e13_warm_start_is_faster_in_solver_time(once):
    """Warm starts must measurably beat cold fills in solver work."""
    warm = _congested_timeline(warm_start=True).run()
    cold = once(lambda: _congested_timeline(warm_start=False).run())
    # Every epoch after the first certifies the previous allocation; the
    # cold run refills all of them.  Deterministic, so no wall-clock assert
    # (sub-millisecond timings flake on shared CI runners) — the
    # e13_epoch_solves_warm/cold benchmarks record the time ratio.
    assert warm.warm_fraction > 0.9
    warm_passes = sum(record.solver_iterations for record in warm.records)
    cold_passes = sum(record.solver_iterations for record in cold.records)
    assert warm_passes < cold_passes / 10
    print(f"\nsolver time: warm {warm.solve_seconds_total * 1e3:.1f} ms "
          f"({warm_passes} fill passes) vs cold "
          f"{cold.solve_seconds_total * 1e3:.1f} ms ({cold_passes} passes)")


@pytest.mark.parametrize("scenario", scenario_names())
def test_e13_catalogue_scenario(once, scenario):
    """Every named catalogue scenario must run and conserve at bench scale."""
    result = once(run_scenario, scenario, clients=min(_CLIENTS, 100_000), seed=_SEED)
    assert result.epochs > 0
    assert (result.goodput_bps <= result.demand_bps * (1 + 1e-9)).all()


def test_e13_report(once):
    """Regenerate the E13 campaign tables (the rows EXPERIMENTS.md quotes)."""
    result = once(run_timeline_catalogue, clients=min(_CLIENTS, 100_000), seed=_SEED)
    emit(result.report)
    assert result.all_conserved
    assert len(result.campaign.records) >= 6
