"""E6 — neutralizer vs onion-routing resource consumption (§5 related-work claim)."""

from repro.analysis.experiments import run_onion_comparison

from conftest import emit


def test_e6_vs_onion(once):
    """Regenerate the E6 state/public-key/AES comparison tables."""
    result = once(run_onion_comparison, 30, 10)
    emit(result.report)
    rows = {name: (neutralizer, onion) for name, neutralizer, onion in result.measured_rows}
    assert rows["state entries (all boxes/relays)"][0] == 0.0
    assert rows["state entries (all boxes/relays)"][1] > 0.0
    assert rows["public-key operations"][0] < rows["public-key operations"][1]
    assert rows["AES ops per data packet"][0] < rows["AES ops per data packet"][1]
