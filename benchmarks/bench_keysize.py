"""E7 — one-time RSA key-size ablation (§3.2 security/efficiency tradeoff)."""

from repro.analysis.experiments import run_keysize_tradeoff

from conftest import emit


def test_e7_keysize_tradeoff(once):
    """Regenerate the E7 key-size table (costs, symmetric equivalence, safety margin)."""
    result = once(run_keysize_tradeoff, (384, 512, 768, 1024))
    emit(result.report)
    by_bits = {row.bits: row for row in result.rows}
    assert by_bits[512].symmetric_equivalent == 56.0
    # Larger keys cost the source more but buy a wider factoring margin.
    assert by_bits[1024].source_decrypt_seconds > by_bits[512].source_decrypt_seconds
    assert by_bits[1024].safety_margin > by_bits[512].safety_margin
    # Even the 512-bit one-time key comfortably outlives its 2-RTT exposure window.
    assert by_bits[512].safety_margin > 1e3
