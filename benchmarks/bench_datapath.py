"""E2 — data-path throughput: neutralized vs vanilla forwarding (paper: 422 vs 600 kpps)."""

from repro.analysis.experiments import (
    _standalone_domain,
    make_neutralized_data_packet,
    run_datapath_throughput,
)
from repro.baselines.vanilla import VanillaForwarder
from repro.crypto.backend import fast_backend_available
from repro.packet.addresses import ip
from repro.packet.builder import udp_packet

from conftest import emit

_BACKEND = "fast" if fast_backend_available() else None


def test_e2_neutralized_forwarding(benchmark):
    """Time the neutralizer's per-packet forward-path processing."""
    domain = _standalone_domain(seed=201, backend=_BACKEND)
    neutralizer = domain.create_neutralizer("bench")
    packet = make_neutralized_data_packet(domain, ip("10.1.0.9"), ip("10.3.0.5"),
                                          64, _BACKEND)
    benchmark(lambda: neutralizer.process(packet))
    assert neutralizer.counters["data_packets_forwarded"] > 0


def test_e2_vanilla_forwarding(benchmark):
    """Time the vanilla forwarding baseline on a same-sized packet."""
    forwarder = VanillaForwarder()
    packet = udp_packet(ip("10.1.0.9"), ip("10.3.0.5"), b"u" * 64)
    benchmark(lambda: forwarder.process(packet))


def test_e2_report(once):
    """Regenerate the E2 table (kpps for both paths and their ratio)."""
    result = once(run_datapath_throughput, 3000)
    emit(result.report)
    assert 0.0 < result.relative_throughput < 1.0
