"""E12 — fleet-scale fluid solve (acceptance: 10^6 clients, 16 sites, < 30 s).

``SCALE_BENCH_CLIENTS`` scales the headline population down for CI smoke
runs (e.g. ``SCALE_BENCH_CLIENTS=2000``); the default is the full million.
"""

import os

from repro.analysis.experiments import run_fleet_scale
from repro.scale import (
    ClientPopulation,
    FleetScaleRunner,
    NeutralizerFleet,
    Telemetry,
    phase_breakdown,
)

from conftest import emit

_CLIENTS = int(os.environ.get("SCALE_BENCH_CLIENTS", "1000000"))
_SEED = 81


def test_e12_population_build(benchmark):
    """Vectorized population materialization (class/region/ring arrays)."""
    benchmark(lambda: ClientPopulation(_CLIENTS, seed=_SEED))


def test_e12_fleet_assignment(benchmark):
    """Consistent-hash assignment of the whole population to 16 sites."""
    population = ClientPopulation(_CLIENTS, seed=_SEED)
    fleet = NeutralizerFleet.build(16)
    benchmark(lambda: fleet.assign_sites(population.ring_positions))


def test_e12_million_client_solve(once, benchmark):
    """The acceptance target: a full solve of the headline population."""
    telemetry = Telemetry()
    runner = FleetScaleRunner(
        client_counts=(_CLIENTS,), n_sites=16, seed=_SEED, telemetry=telemetry,
    )
    result = once(runner.run)
    assert result.largest_point.clients == _CLIENTS
    assert result.largest_point.delivered_fraction > 0.0
    benchmark.extra_info["phases"] = phase_breakdown(telemetry)


def test_e12_report(once):
    """Regenerate the E12 sweep + cross-validation tables."""
    counts = tuple(sorted({max(100, _CLIENTS // 100), max(100, _CLIENTS // 10), _CLIENTS}))
    result = once(run_fleet_scale, counts, seed=_SEED, validate=True)
    emit(result.report)
    assert result.validated
    assert result.sweep.largest_point.clients == _CLIENTS
    assert result.sweep.largest_point.wall_seconds < 30.0
