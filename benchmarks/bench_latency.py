"""E15 — Monte-Carlo queueing-latency campaigns (acceptance: < 5 s).

The acceptance configuration is a seeded 10^6-client, 200-epoch, 32-replica
campaign on the *elastic* demand mix (TCP-like web/video + CBR VoIP) with a
latency-aware autoscaler: it must run end-to-end in under five seconds and
emit P50/P95/P99 path-delay distributions plus per-replica latency-vs-cost
numbers.  ``SCALE_BENCH_CLIENTS`` scales the population down for CI smoke
runs (e.g. ``SCALE_BENCH_CLIENTS=2000``); the default is the full million.
"""

import os

from repro.analysis.experiments import run_latency_campaign
from repro.scale import (
    LatencyCampaignRunner,
    Telemetry,
    phase_breakdown,
    run_latency_cost_frontier,
)
from repro.scale.validate import cross_validate_latency

from conftest import emit

_CLIENTS = int(os.environ.get("SCALE_BENCH_CLIENTS", "1000000"))
_SEED = 81


def test_e15_campaign_end_to_end(once, benchmark):
    """The acceptance target: 10^6 clients x 200 epochs x 32 replicas < 5 s."""
    telemetry = Telemetry()
    runner = LatencyCampaignRunner(
        clients=_CLIENTS, epochs=200, replicas=32, seed=_SEED,
        telemetry=telemetry,
    )
    result = once(runner.run)
    benchmark.extra_info["phases"] = phase_breakdown(telemetry)
    if _CLIENTS >= 1_000_000:
        # The wall-clock acceptance bound is defined for the full-scale
        # configuration; the campaign cost is dominated by epochs x
        # replicas x solver passes, so smoke populations barely shrink it
        # and the assert would be machine-luck on shared CI runners.
        assert result.duration_seconds < 5.0
    assert len(result.records) == 32
    pooled = result.distributions["latency p95 (ms)"]
    assert pooled.samples == 32 * 200
    # Latency is an upper-tail risk: the P99 row is the per-epoch P95 only
    # 1% of epochs exceed, so the percentiles are ordered upward.
    assert pooled.p50 <= pooled.p95 <= pooled.p99
    assert all(record.mean_latency_p95_seconds > 0 for record in result.records)
    emit(result.report)


def test_e15_same_seed_same_distributions(once):
    """Determinism at bench scale: rerunning the campaign changes nothing."""
    clients = min(_CLIENTS, 50_000)
    first = LatencyCampaignRunner(
        clients=clients, epochs=60, replicas=8, seed=_SEED).run()
    second = once(LatencyCampaignRunner(
        clients=clients, epochs=60, replicas=8, seed=_SEED).run)
    assert first.distributions == second.distributions


def test_e15_latency_cost_frontier(once):
    """The latency-vs-cost frontier across P95 delay targets."""
    result = once(
        run_latency_cost_frontier,
        targets_p95_seconds=(0.045, 0.055, 0.07, 0.1),
        clients=min(_CLIENTS, 200_000), epochs=96, replicas=6, seed=_SEED,
    )
    assert len(result.points) == 4
    # Looser latency targets spend fewer dollars.
    assert result.points[-1].mean_cost_usd <= result.points[0].mean_cost_usd
    emit(result.report)


def test_e15_proxy_validates_against_netsim(once):
    """The latency proxy agrees with the packet-level arm within 15%."""
    result = once(cross_validate_latency, seed=_SEED)
    assert result.within_tolerance, result.failures
    emit(result.report)


def test_e15_report(once):
    """Regenerate the E15 wrapper report (the rows EXPERIMENTS.md quotes)."""
    result = once(
        run_latency_campaign,
        clients=min(_CLIENTS, 100_000), epochs=100, replicas=16, seed=_SEED,
        validate=False,
    )
    rendered = result.report.render()
    assert "E15" in rendered and "latency" in rendered
