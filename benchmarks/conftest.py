"""Benchmark harness configuration.

Every benchmark prints the experiment's report table (the rows EXPERIMENTS.md
quotes) in addition to timing the underlying operation with pytest-benchmark.
Scenario-level experiments are timed with a single round — they are simulation
runs, not microbenchmarks — while the fast-path experiments (E1–E3) use real
repeated timing.
"""

from __future__ import annotations

import pytest


def emit(report) -> None:
    """Print an ExperimentReport so it lands in the captured benchmark output."""
    print()
    print(report.render())


@pytest.fixture
def once(benchmark):
    """Run a whole-experiment callable exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
