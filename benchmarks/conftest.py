"""Benchmark harness configuration.

Every benchmark prints the experiment's report table (the rows EXPERIMENTS.md
quotes) in addition to timing the underlying operation with pytest-benchmark.
Scenario-level experiments are timed with a single round — they are simulation
runs, not microbenchmarks — while the fast-path experiments (E1–E3) use real
repeated timing.
"""

from __future__ import annotations

import datetime
import json
from typing import List

import pytest


def emit(report) -> None:
    """Print an ExperimentReport so it lands in the captured benchmark output."""
    print()
    print(report.render())


@pytest.fixture
def once(benchmark):
    """Run a whole-experiment callable exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


# -- BENCH_*.json artifact schema --------------------------------------------------
#
# Every benchmark job publishes its ``--benchmark-json`` artifact; a malformed
# one (empty timing data, unordered stats, an incoherent telemetry ``phases``
# section) silently poisons the trend dashboards, so the schema is checked
# in-process the moment pytest-benchmark writes the file.

def check_bench_artifact(data: dict) -> List[str]:
    """Validate a pytest-benchmark JSON artifact; return the list of problems.

    Checks the required top-level keys, that the datetime stamp parses, that
    every benchmark is named with non-empty, non-negative timing data and
    ordered min/mean/max stats, and — when a benchmark embeds a telemetry
    ``extra_info["phases"]`` section — that each phase row is coherent
    (positive count, ordered percentiles).  ``phases`` itself is optional:
    the fast-path crypto benchmarks share this conftest and carry none.

    Multi-worker campaign artifacts (``BENCH_parallel.json``) merge phase
    rows from every worker process, so a row's ``count`` reflects the whole
    fleet and its ``total_s`` can legitimately exceed the benchmark's own
    wall time — neither is treated as malformed.  Those benchmarks also
    embed an ``extra_info["parallel"]`` section whose shape is validated
    here: a positive integer ``n_workers`` and a ``speedup`` consistent
    with its own ``serial_s`` / ``parallel_s`` timings.
    An empty return value means the artifact is well formed.
    """
    problems: List[str] = []
    for key in ("machine_info", "datetime", "benchmarks"):
        if key not in data:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems
    try:
        datetime.datetime.fromisoformat(str(data["datetime"]))
    except ValueError:
        problems.append(f"unparseable datetime {data['datetime']!r}")
    if not data["benchmarks"]:
        problems.append("no benchmarks recorded")
    for bench in data["benchmarks"]:
        name = bench.get("name")
        if not name:
            problems.append("benchmark with no name")
            continue
        stats = bench.get("stats") or {}
        timings = stats.get("data")
        if not timings:
            problems.append(f"{name}: empty timing data")
        else:
            if min(timings) < 0:
                problems.append(f"{name}: negative timing sample")
            ordered = stats.get("min", 0) <= stats.get("mean", 0) <= stats.get("max", 0)
            if not ordered:
                problems.append(f"{name}: min/mean/max stats out of order")
        extra = bench.get("extra_info") or {}
        parallel = extra.get("parallel")
        if parallel is not None:
            n_workers = parallel.get("n_workers")
            if not isinstance(n_workers, int) or n_workers < 1:
                problems.append(f"{name}: parallel.n_workers must be a "
                                f"positive integer, got {n_workers!r}")
            serial_s = parallel.get("serial_s", 0.0)
            parallel_s = parallel.get("parallel_s", 0.0)
            if serial_s <= 0.0 or parallel_s <= 0.0:
                problems.append(f"{name}: parallel timings must be positive")
            else:
                implied = serial_s / parallel_s
                if abs(parallel.get("speedup", implied) - implied) > 0.01 * implied:
                    problems.append(
                        f"{name}: parallel.speedup inconsistent with timings")
        phases = extra.get("phases")
        if phases is None:
            continue
        if not phases:
            problems.append(f"{name}: phases section present but empty")
        for phase, row in phases.items():
            if row.get("count", 0) <= 0:
                problems.append(f"{name}: phase {phase!r} has count <= 0")
            p50, p95 = row.get("p50_s", 0.0), row.get("p95_s", 0.0)
            if not 0.0 <= p50 <= p95 + 1e-12 <= row.get("max_s", 0.0) + 2e-12:
                problems.append(f"{name}: phase {phase!r} percentiles out of order")
    return problems


def pytest_sessionfinish(session, exitstatus):
    """Fail the run when ``--benchmark-json`` produced a malformed artifact.

    pytest-benchmark writes the JSON from its own hookwrapper around this
    hook, *before* yielding to plain implementations, so the file is
    complete by the time this runs.
    """
    handle = getattr(session.config.option, "benchmark_json", None)
    if handle is None:
        return
    path = getattr(handle, "name", handle)
    try:
        with open(path) as artifact:
            data = json.load(artifact)
    except (OSError, ValueError) as exc:
        session.exitstatus = 1
        print(f"\nBENCH artifact {path} unreadable: {exc}")
        return
    problems = check_bench_artifact(data)
    if problems:
        session.exitstatus = 1
        print(f"\nBENCH artifact {path} failed schema check:")
        for problem in problems:
            print(f"  - {problem}")
