"""E4 — the Figure-1 scenario: competitor VoIP with/without neutralizer and discrimination."""

from repro.analysis.experiments import run_discrimination_experiment

from conftest import emit


def test_e4_discrimination_prevention(once):
    """Regenerate the E4 arm table (MOS per arm, visibility of the competitor address)."""
    result = once(run_discrimination_experiment, call_seconds=3.0)
    emit(result.report)
    degraded = result.arm("plain+discrimination")
    protected = result.arm("neutralized+discrimination")
    clean = result.arm("plain+no-discrimination")
    assert degraded.competitor_report.mos < clean.competitor_report.mos - 0.5
    assert abs(protected.competitor_report.mos - clean.competitor_report.mos) < 0.2
    assert not protected.att_saw_competitor_address
