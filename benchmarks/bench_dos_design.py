"""E8 — chosen vs alternative key-setup direction under load (§3.2 design choice)."""

from repro.analysis.experiments import run_dos_design_comparison

from conftest import emit


def test_e8_key_setup_direction(once):
    """Regenerate the E8 table: per-request cost at the neutralizer for both designs."""
    result = once(run_dos_design_comparison, 100)
    emit(result.report)
    # The chosen design (neutralizer encrypts with e=3) sustains a much higher
    # key-setup rate than the rejected one (neutralizer decrypts, 1024-bit).
    assert result.advantage > 5.0
