"""E16 — adversary arms-race campaigns (acceptance: < 5 s).

The acceptance configuration is a seeded 10^6-client, 200-epoch campaign
sweeping ISP aggressiveness × adoption sensitivity over 32 Monte-Carlo
replicas total: it must run end-to-end in under five seconds, be
bit-deterministic from its seed, and its frontier must exhibit the
self-defeating-discrimination regime (escalation losing to cheap
adoption).  ``SCALE_BENCH_CLIENTS`` scales the population down for CI
smoke runs (e.g. ``SCALE_BENCH_CLIENTS=2000``); the default is the full
million.
"""

import os

from repro.scale import (
    AdversaryCampaignRunner,
    Telemetry,
    cross_validate_adversary,
    phase_breakdown,
)
from repro.scale.runner import compare_variance_reduction

from conftest import emit

_CLIENTS = int(os.environ.get("SCALE_BENCH_CLIENTS", "1000000"))
_SEED = 81


def test_e16_campaign_end_to_end(once, benchmark):
    """The acceptance target: 10^6 clients x 200 epochs x 32 replicas < 5 s."""
    telemetry = Telemetry()
    runner = AdversaryCampaignRunner(
        clients=_CLIENTS, epochs=200, seed=_SEED, telemetry=telemetry,
    )
    assert runner.total_replicas == 32
    result = once(runner.run)
    benchmark.extra_info["phases"] = phase_breakdown(telemetry)
    if _CLIENTS >= 1_000_000:
        # The wall-clock bound is defined for the full-scale configuration;
        # smoke populations barely shrink the epoch x replica cost and the
        # assert would be machine-luck on shared CI runners.
        assert result.duration_seconds < 5.0
    assert len(result.points) == 8
    # The headline claim: at the cheap-adoption end, escalation backfires.
    defeated = result.self_defeating_points()
    assert defeated, "the frontier must show the self-defeating regime"
    assert all(point.sensitivity == max(runner.sensitivities)
               for point in defeated)
    # And the mechanism is visible: adoption saturates while the
    # discriminated share collapses toward the leakage floor.
    frontier = result.frontier(max(runner.sensitivities))
    assert frontier[-1].final_adoption > frontier[0].final_adoption
    emit(result.report)


def test_e16_same_seed_same_frontier(once):
    """Determinism at bench scale: rerunning the campaign changes nothing."""
    clients = min(_CLIENTS, 50_000)
    first = AdversaryCampaignRunner(
        clients=clients, epochs=60, replicas_per_point=2, seed=_SEED).run()
    second = once(AdversaryCampaignRunner(
        clients=clients, epochs=60, replicas_per_point=2, seed=_SEED).run)
    assert first.points == second.points


def test_e16_adversary_validates_against_discrimination_path(once):
    """The fluid adversary epoch agrees with the packet-level rules (10%)."""
    result = once(cross_validate_adversary, seed=_SEED)
    assert result.within_tolerance, result.failures
    emit(result.report)


def test_e16_variance_reduction_is_measured(once):
    """The satellite: stratified/antithetic estimator spread is measured."""
    result = once(
        compare_variance_reduction,
        clients=min(_CLIENTS, 20_000), epochs=40, replicas=8, batches=4,
        seed=_SEED, max_sites=12, nominal_sites=10,
    )
    assert set(result.mean_estimator_std) == {"iid", "stratified", "antithetic"}
    emit(result.report)
