"""Parallel campaign engine — scaling efficiency and equivalence at scale.

The acceptance configuration farms the E14 campaign (10^6 clients ×
200 epochs × 32 replicas) over 8 workers and must beat the serial run by
at least 3×; machines with fewer than 8 cores (CI smoke runners included)
measure whatever parallelism they have and skip the speedup assertion
rather than fail on hardware they don't own.  ``SCALE_BENCH_CLIENTS``
scales the population down for smoke runs, exactly like the other
campaign benchmarks.

The artifact embeds two sections the conftest schema check validates:
``extra_info["phases"]`` (the parent trace merged with every worker's
span durations) and ``extra_info["parallel"]`` (n_workers, serial vs
parallel wall time, speedup, per-worker efficiency) — the scaling numbers
``tools/perf_report.py`` renders for the bench-trajectory dashboards.
"""

import os
import time

from repro.scale import (
    ProcessPoolCampaignExecutor,
    StochasticCampaignRunner,
    Telemetry,
    canonical_result_bytes,
    phase_breakdown,
)

from conftest import emit

_CLIENTS = int(os.environ.get("SCALE_BENCH_CLIENTS", "1000000"))
_WORKERS = min(int(os.environ.get("SCALE_BENCH_WORKERS", "8")),
               os.cpu_count() or 1)
_SEED = 81


def _campaign(telemetry=None):
    return StochasticCampaignRunner(
        clients=_CLIENTS, epochs=200, replicas=32, seed=_SEED,
        telemetry=telemetry if telemetry is not None else Telemetry(),
    )


def test_parallel_campaign_scaling(once, benchmark):
    """8-worker E14 must be >= 3x serial (asserted only on >= 8 cores)."""
    serial_start = time.perf_counter()
    serial_result = _campaign().run()
    serial_s = time.perf_counter() - serial_start

    telemetry = Telemetry()
    runner = _campaign(telemetry)
    executor = ProcessPoolCampaignExecutor(runner, n_workers=_WORKERS)
    parallel_start = time.perf_counter()
    parallel_result = once(executor.run)
    parallel_s = time.perf_counter() - parallel_start

    assert canonical_result_bytes(parallel_result) == \
        canonical_result_bytes(serial_result)

    speedup = serial_s / parallel_s
    benchmark.extra_info["phases"] = phase_breakdown(
        telemetry, extra_durations=executor.phase_durations)
    benchmark.extra_info["parallel"] = {
        "n_workers": _WORKERS,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "efficiency": speedup / _WORKERS,
    }
    emit(parallel_result.report)
    print(f"\nparallel scaling: {_WORKERS} workers, "
          f"serial {serial_s:.2f}s -> parallel {parallel_s:.2f}s "
          f"({speedup:.2f}x, {speedup / _WORKERS:.0%} efficiency)")
    if (os.cpu_count() or 1) >= 8 and _WORKERS >= 8:
        assert speedup >= 3.0, (
            f"8-worker campaign only {speedup:.2f}x faster than serial")


def test_parallel_checkpoint_roundtrip(once, benchmark, tmp_path):
    """A checkpointed run resumes to the identical table with zero re-work."""
    clients = min(_CLIENTS, 50_000)

    def runner():
        return StochasticCampaignRunner(
            clients=clients, epochs=60, replicas=8, seed=_SEED)

    baseline = canonical_result_bytes(runner().run())
    first = ProcessPoolCampaignExecutor(
        runner(), n_workers=_WORKERS, checkpoint_dir=tmp_path / "ck")
    assert canonical_result_bytes(first.run()) == baseline

    resume = ProcessPoolCampaignExecutor(
        runner(), n_workers=_WORKERS, checkpoint_dir=tmp_path / "ck")
    resumed = once(resume.run)
    assert canonical_result_bytes(resumed) == baseline
    assert resume.units_resumed == 8
    benchmark.extra_info["units_resumed"] = resume.units_resumed
