"""E10 — multi-homed site load balancing across providers' neutralizers (§3.5)."""

from repro.analysis.experiments import run_multihoming_experiment
from repro.analysis.scenarios import COGENT_ANYCAST

from conftest import emit


def test_e10_multihoming_selectors(once):
    """Regenerate the E10 table: per-provider load share for each selection policy."""
    result = once(run_multihoming_experiment, 2000)
    emit(result.report)
    round_robin = result.splits["round-robin"]
    weighted = result.splits["weighted-4:1"]
    assert abs(round_robin[str(COGENT_ANYCAST)] - 0.5) < 0.02
    assert weighted[str(COGENT_ANYCAST)] > 0.7
    assert result.adaptive_prefers_survivor
