"""E1 — key-setup throughput (paper §4: 24.4 kpps, ~88 M sources per hour)."""

from repro.analysis.experiments import (
    make_key_setup_packet,
    run_key_setup_throughput,
    _standalone_domain,
)
from repro.crypto.randomness import DeterministicRandom
from repro.packet.addresses import ip

from conftest import emit


def test_e1_key_setup_fast_path(benchmark):
    """Time one key-setup request → response at the neutralizer."""
    domain = _standalone_domain(seed=101)
    neutralizer = domain.create_neutralizer("bench")
    packet = make_key_setup_packet(ip("10.1.0.7"), domain.anycast_address,
                                   DeterministicRandom(102))
    benchmark(lambda: neutralizer.process(packet))
    assert neutralizer.counters["rsa_encryptions"] > 0


def test_e1_report(once):
    """Regenerate the E1 table (responses/s and sources served per lifetime)."""
    result = once(run_key_setup_throughput, 300)
    emit(result.report)
    assert result.sources_served_per_lifetime > 1_000_000
