"""E11 — pushback against a key-setup flood on the neutralizer (§3.6)."""

from repro.analysis.experiments import run_pushback_experiment

from conftest import emit


def test_e11_pushback(once):
    """Regenerate the E11 table: victim call quality and wasted RSA work, defense on/off."""
    result = once(run_pushback_experiment, call_seconds=2.5)
    emit(result.report)
    arms = {arm.name: arm for arm in result.arms}
    undefended = arms["no defense"]
    defended = arms["pushback"]
    assert defended.victim_call.mos > undefended.victim_call.mos
    assert defended.neutralizer_rsa_ops < undefended.neutralizer_rsa_ops / 2
