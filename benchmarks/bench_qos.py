"""E9 — tiered service survives neutralization (§3.4 DSCP passthrough)."""

from repro.analysis.experiments import run_qos_experiment

from conftest import emit


def test_e9_tiered_service(once):
    """Regenerate the E9 table: EF vs best-effort latency/loss through a congested link."""
    result = once(run_qos_experiment, call_seconds=2.5)
    emit(result.report)
    arms = {arm.scheduler: arm for arm in result.arms}
    priority = arms["priority"]
    fifo = arms["fifo"]
    # With a priority scheduler the paid-for EF class gets a much better
    # latency than best effort, even though every packet is neutralized.
    assert priority.ef_latency < priority.be_latency
    assert priority.ef_latency < fifo.ef_latency
    assert priority.ef_loss <= fifo.ef_loss
