#!/usr/bin/env python3
"""The paper's motivating scenario (§1): an access ISP degrades a competing VoIP service.

Reproduces experiment E4 interactively: a Vonage-like VoIP provider hosted in
Cogent competes with AT&T's own VoIP offering.  AT&T installs a policy that
delays and drops packets to/from the competitor.  We measure the competitor's
call quality (MOS) in four arms — with and without discrimination, with and
without the neutralizer — and print the table.

Run with:  python examples/voip_discrimination.py
"""

from repro.analysis.experiments import run_discrimination_experiment
from repro.analysis.report import format_table


def main() -> None:
    result = run_discrimination_experiment(call_seconds=4.0)
    print(result.report.render())

    rows = []
    for arm in result.arms:
        verdict = "usable" if arm.competitor_report.is_usable else "UNUSABLE"
        rows.append([arm.name, f"{arm.competitor_report.mos:.2f}", verdict])
    print(format_table(["arm", "competitor MOS", "verdict"], rows,
                       title="Summary: can Ann still use the competing VoIP service?"))

    degraded = result.arm("plain+discrimination")
    protected = result.arm("neutralized+discrimination")
    print(
        "\nWithout the neutralizer the ISP can push the competitor below the "
        f"usability threshold (MOS {degraded.competitor_report.mos:.2f}); with the "
        f"neutralizer the same policy has no effect (MOS {protected.competitor_report.mos:.2f}) "
        "because the competitor's address never appears inside the access ISP."
    )


if __name__ == "__main__":
    main()
