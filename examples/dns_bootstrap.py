#!/usr/bin/env python3
"""Bootstrapping via DNS (§3.1), including the encrypted-query defence.

Shows the full bootstrap path of the paper: the destination publishes its
address, public key and neutralizer anycast address in DNS; the client inside
the discriminatory ISP resolves them — first in clear text (where the access
ISP can see and delay queries for specific names), then over the encrypted
transport to a third-party resolver (where it cannot) — and finally uses the
bootstrap result to open a neutralized connection.

Run with:  python examples/dns_bootstrap.py
"""

from repro.analysis.scenarios import build_figure1
from repro.discrimination import delay_dns_policy, install_policy
from repro.dns import DnsResolverService, ResolverConfig, StubResolver, Zone
from repro.e2e import generate_host_keypair
from repro.packet import udp_packet
from repro.units import mbps, msec


def main() -> None:
    scenario = build_figure1(neutralized=True, client_hosts=("ann",), server_hosts=("google",))
    topo = scenario.topology
    deployment = scenario.deployment
    ann = topo.host("ann")
    google = topo.host("google")

    # A third-party resolver hosted inside Cogent (outside AT&T's control).
    resolver_host = topo.add_host("resolver", "cogent")
    topo.add_link("resolver", "cogent-core", rate_bps=mbps(100), delay_seconds=msec(1))
    topo.build_routes()
    resolver_keys = generate_host_keypair(1024, scenario.rng)
    zone = deployment.zone  # the records attach_server already published
    DnsResolverService(zone, keypair=resolver_keys).attach(resolver_host)

    # AT&T delays cleartext DNS queries for the site that did not pay (§3.1 attack).
    install_policy(topo, "att", delay_dns_policy("www.google.com", delay_seconds=0.4),
                   rng=scenario.rng)

    def resolve(use_secure_transport: bool) -> float:
        config = ResolverConfig(
            address=resolver_host.address,
            public_key=resolver_keys.public,
            use_secure_transport=use_secure_transport,
        )
        stub = StubResolver(ann, config, rng=scenario.rng,
                            client_port=36000 + int(use_secure_transport))
        results = []
        stub.lookup_bootstrap("www.google.com", lambda info, err: results.append((info, err)))
        topo.run(3.0)
        info, error = results[0]
        assert error is None, error
        return stub.mean_latency, info

    clear_latency, info = resolve(use_secure_transport=False)
    secure_latency, info = resolve(use_secure_transport=True)
    print(f"cleartext lookup latency (query name visible, delayed): {clear_latency*1000:.1f} ms")
    print(f"encrypted lookup latency (query name hidden):           {secure_latency*1000:.1f} ms")
    print(f"bootstrap result: {info.name} -> {info.address}, "
          f"neutralizers {[str(a) for a in info.neutralizer_addresses]}, "
          f"key published: {info.public_key is not None}")

    # Use the bootstrap result to talk to Google through the neutralizer.
    client = deployment.clients["ann"]
    client.register_from_bootstrap(info)
    got = []
    google.register_port_handler(8080, lambda p, h: got.append(p))
    ann.send(udp_packet(ann.address, info.address, b"bootstrapped hello", destination_port=8080))
    topo.run(2.0)
    print(f"google received {len(got)} packet(s) via the neutralizer; "
          f"AT&T ever saw google's address: {scenario.att_trace.ever_saw_address(info.address)}")


if __name__ == "__main__":
    main()
