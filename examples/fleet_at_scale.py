#!/usr/bin/env python3
"""A million clients against a 16-site neutralizer fleet, in fluid time.

Three acts:

1. cross-validate the fluid model against the packet-level simulator on a
   small shared dumbbell (the license for everything that follows);
2. sweep the population from a thousand to a million clients against a
   16-site fleet and print where goodput, CPU and uplinks stand;
3. stress the same million-client population: shrink the boxes until the
   fleet saturates, then fail two sites and watch consistent hashing move
   exactly their clients while max-min fairness sheds load.

Run with:  PYTHONPATH=src python examples/fleet_at_scale.py
"""

from repro.scale import (
    ClientPopulation,
    CryptoCostModel,
    FleetScaleRunner,
    NeutralizerFleet,
    ScaleScenario,
    cross_validate,
)
from repro.units import mbps


def main() -> None:
    # 1. Trust, but verify: fluid vs packet-level on the shared scenario.
    validation = cross_validate()
    print(validation.report.render())
    print(f"agreement within 10%: {validation.within_tolerance} "
          f"(worst relative error {validation.max_relative_error:.4f})\n")

    # 2. The headline sweep: 10^3 → 10^6 clients, 16 sites, 8 cores each.
    runner = FleetScaleRunner(n_sites=16, seed=2006)
    result = runner.run()
    print(result.report.render())
    headline = result.largest_point
    print(f"run {result.run_id}: {headline.clients:,} clients solved in "
          f"{headline.wall_seconds:.2f}s wall-clock "
          f"({headline.solver_iterations} solver passes)\n")

    # 3. Stress: weak boxes, then two site failures under load.
    population = ClientPopulation(1_000_000, seed=2006)
    fleet = NeutralizerFleet.build(
        16, cores=1.0, uplink_bps=mbps(4000), cost_model=CryptoCostModel.default()
    )
    scenario = ScaleScenario(population, fleet)
    healthy = scenario.solve()
    print(f"weak fleet, healthy: delivered {healthy.delivered_fraction:.1%} of "
          f"{healthy.total_demand_bps / 1e9:.1f} Gb/s demand, "
          f"peak cpu {healthy.cpu_utilization.max():.0%}")

    for name in ("site03", "site11"):
        fleet.fail_site(name)
    degraded = scenario.solve()
    moved = int((degraded.clients_per_site == 0).sum())
    print(f"after failing 2 sites: delivered {degraded.delivered_fraction:.1%}, "
          f"{moved} sites empty, survivors absorb "
          f"{degraded.clients_per_site.max():,} clients at peak "
          f"(peak cpu {degraded.cpu_utilization.max():.0%})")


if __name__ == "__main__":
    main()
