#!/usr/bin/env python3
"""Quickstart: deploy a neutralizer and send traffic an access ISP cannot target.

Builds a three-node path (Ann in AT&T, Google in Cogent), deploys the
neutralizer service on Cogent's border, attaches the transparent host stacks,
and shows that (a) the application exchange works unchanged, and (b) AT&T
never sees Google's address or the payload.

Run with:  python examples/quickstart.py
"""

from repro.core import neutralize_isp
from repro.crypto import DeterministicRandom
from repro.netsim import Relationship, Topology, TraceCollector
from repro.packet import ip, udp_packet
from repro.units import mbps, msec


def main() -> None:
    rng = DeterministicRandom(2006)

    # 1. Build a small internetwork: a discriminatory access ISP and a neutral ISP.
    topo = Topology()
    topo.add_isp("att", 7018, "10.1.0.0/16", discriminatory=True)
    topo.add_isp("cogent", 174, "10.3.0.0/16")
    topo.add_router("att-br", "att", border=True)
    topo.add_router("cogent-br", "cogent", border=True)
    ann = topo.add_host("ann", "att")
    google = topo.add_host("google", "cogent")
    topo.add_link("ann", "att-br", rate_bps=mbps(20), delay_seconds=msec(2))
    topo.add_link("att-br", "cogent-br", rate_bps=mbps(500), delay_seconds=msec(8))
    topo.add_link("cogent-br", "google", rate_bps=mbps(100), delay_seconds=msec(1))
    topo.set_relationship("att", "cogent", Relationship.PEER)
    topo.build_routes()

    # Record everything AT&T's border router can observe (the eavesdropper view).
    att_view = TraceCollector("att-view")
    topo.router("att-br").ingress_hooks.append(att_view.router_hook())

    # 2. Deploy the neutralizer service on Cogent and attach the host stacks.
    deployment = neutralize_isp(topo, "cogent", ip("10.200.0.1"), rng=rng)
    deployment.attach_server(google, dns_name="www.google.com")
    deployment.attach_client(ann, publish_key=True)
    deployment.bootstrap_client("ann", "google")
    print(deployment.deployment.describe())

    # 3. Run an ordinary request/response application on top.
    def serve(packet, host):
        reply = udp_packet(host.address, packet.source, b"HTTP/1.1 200 OK " + packet.payload,
                           source_port=80, destination_port=packet.udp.source_port)
        host.send(reply)

    google.register_port_handler(80, serve)
    replies = []
    ann.register_port_handler(42000, lambda packet, host: replies.append(packet))

    ann.send(udp_packet(ann.address, google.address, b"GET /index.html",
                        source_port=42000, destination_port=80))
    topo.run(3.0)

    # 4. What happened?
    print(f"\nAnn received {len(replies)} reply: {replies[0].payload!r}")
    print(f"Reply appears to come from {replies[0].source} (Google's real address)")
    print("\nWhat AT&T could see on the wire:")
    print(f"  saw Google's address in any IP header:   "
          f"{att_view.ever_saw_address(google.address, 'att-br')}")
    print(f"  saw the request payload ('GET'):         "
          f"{att_view.payload_contains(b'GET', 'att-br')}")
    print(f"  addresses visible inside AT&T:           "
          f"{sorted(str(a) for a in att_view.addresses_seen('att-br'))}")
    print("\nNeutralizer counters:", deployment.counters()["neutralizers"])


if __name__ == "__main__":
    main()
