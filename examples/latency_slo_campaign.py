#!/usr/bin/env python3
"""Latency as the SLO: elastic demand, queueing delay, and the price of P95.

Three acts:

1. run the catalogue's ``elastic_web_mix`` scenario: TCP-like web and video
   ride a flash crowd by backing off alpha-fairly while CBR VoIP is shed
   max-min — and the M/G/1-PS latency proxy shows the crowd as a displaced
   delay tail (per-class percentiles), not just a throughput dip;
2. run a small E15 Monte-Carlo campaign: a latency-aware autoscaler holds
   the client-weighted P95 path delay on target through seeded stochastic
   event sequences, reported as pooled P50/P95/P99 latency distributions
   and per-replica latency-SLO attainment;
3. sweep the controller's P95 target to chart the latency-vs-cost frontier —
   queueing delay is convex in utilization, so the last milliseconds are
   bought with disproportionately many sites.

Run with:  PYTHONPATH=src python examples/latency_slo_campaign.py
(set SCALE_EXAMPLE_CLIENTS to shrink or grow the population; CI smoke uses
a small value).
"""

import os

from repro.analysis.report import format_series
from repro.scale import (
    LatencyCampaignRunner,
    build_scenario,
    run_latency_cost_frontier,
)

CLIENTS = int(os.environ.get("SCALE_EXAMPLE_CLIENTS", "100000"))
SEED = 2006


def act_one_elastic_flash_crowd() -> None:
    timeline = build_scenario("elastic_web_mix", clients=CLIENTS, seed=SEED)
    result = timeline.run()
    print(format_series(
        "epoch", [record.epoch for record in result.records], result.series(),
        title=f"elastic web mix under a flash crowd: {CLIENTS:,} clients, "
              f"{result.epoch_seconds / 60:.0f}-minute epochs",
        max_rows=14,
    ))
    worst = result.worst_latency_p95_seconds
    print(f"\nthe crowd moved the client-weighted P95 path delay from "
          f"{result.records[0].latency_p95_seconds * 1e3:.1f} ms to "
          f"{worst * 1e3:.1f} ms at its worst; "
          f"{result.mean_latency_slo_violations:.1%} of clients (mean over "
          f"epochs) sat beyond the {timeline.latency_slo_seconds * 1e3:.0f} ms SLO")
    print(f"delivered fraction bottomed at {result.min_delivered_fraction:.1%} — "
          f"elastic classes backed off alpha-fairly, VoIP was shed max-min\n")


def act_two_latency_campaign() -> None:
    runner = LatencyCampaignRunner(
        clients=CLIENTS, epochs=96, replicas=12, seed=SEED,
        nominal_sites=16, max_sites=24, target_p95_seconds=0.055,
    )
    result = runner.run()
    print(result.report.render())
    pooled = result.distributions["latency p95 (ms)"]
    print(f"pooled per-epoch P95 path delay: p50 {pooled.p50:.1f} ms, "
          f"p95 {pooled.p95:.1f} ms, p99 {pooled.p99:.1f} ms "
          f"(worst epoch anywhere: {pooled.worst:.1f} ms)\n")


def act_three_latency_cost_frontier() -> None:
    frontier = run_latency_cost_frontier(
        targets_p95_seconds=(0.045, 0.06, 0.09), clients=min(CLIENTS, 50_000),
        epochs=48, replicas=4, seed=SEED,
        nominal_sites=16, max_sites=24,
    )
    print(frontier.report.render())


def main() -> None:
    act_one_elastic_flash_crowd()
    act_two_latency_campaign()
    act_three_latency_cost_frontier()


if __name__ == "__main__":
    main()
