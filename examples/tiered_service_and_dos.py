#!/usr/bin/env python3
"""Tiered service over neutralized traffic (§3.4) and DoS defense (§3.6).

Two shorter demonstrations in one script:

1. **Tiered service**: the neutralizer never touches the DSCP, so an ISP can
   still sell priority treatment to its own customers.  We congest a
   bottleneck and compare EF vs best-effort latency for neutralized calls
   under FIFO and priority scheduling (experiment E9).
2. **Pushback**: an attacker floods the neutralizer's anycast address with
   key-setup requests; pushback rate-limits the aggregate upstream, protecting
   both a victim call and the neutralizer's CPU budget (experiment E11).

Run with:  python examples/tiered_service_and_dos.py
"""

from repro.analysis.experiments import run_pushback_experiment, run_qos_experiment


def main() -> None:
    qos = run_qos_experiment(call_seconds=3.0)
    print(qos.report.render())
    priority = next(arm for arm in qos.arms if arm.scheduler == "priority")
    print(f"With priority scheduling, the EF call sees {priority.ef_latency*1000:.1f} ms "
          f"vs {priority.be_latency*1000:.1f} ms for best effort — tiered service survives "
          "neutralization because the DSCP stays visible.\n")

    pushback = run_pushback_experiment(call_seconds=3.0)
    print(pushback.report.render())
    undefended = next(arm for arm in pushback.arms if arm.name == "no defense")
    defended = next(arm for arm in pushback.arms if arm.name == "pushback")
    print(f"Without defense the flood drives the victim call to MOS "
          f"{undefended.victim_call.mos:.2f} and costs the neutralizer "
          f"{undefended.neutralizer_rsa_ops} RSA operations; with pushback the call stays at "
          f"MOS {defended.victim_call.mos:.2f} and wasted work drops to "
          f"{defended.neutralizer_rsa_ops} operations.")


if __name__ == "__main__":
    main()
