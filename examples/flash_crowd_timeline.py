#!/usr/bin/env python3
"""A flash crowd rides up, saturates the fleet, and decays — in fluid time.

Two acts:

1. run the catalogue's ``flash_crowd`` scenario (a 6x demand spike in the
   two largest metro regions against a fleet provisioned with 40% headroom)
   and print the epoch-by-epoch story: demand climbing, the fleet pinning at
   its CPU/uplink knees, max-min fairness spreading the pain, and recovery;
2. rerun the same timeline cold (no warm starts) to show what the verified
   warm-start fast path is worth in solver time.

Run with:  PYTHONPATH=src python examples/flash_crowd_timeline.py
"""

from repro.analysis.report import format_series
from repro.scale import build_scenario

CLIENTS = 200_000


def main() -> None:
    # 1. The flash crowd, epoch by epoch.
    timeline = build_scenario("flash_crowd", clients=CLIENTS, seed=2006)
    result = timeline.run()
    print(format_series(
        "epoch", [record.epoch for record in result.records], result.series(),
        title=f"flash crowd: {CLIENTS:,} clients, 16 sites, "
              f"{result.epoch_seconds / 60:.0f}-minute epochs",
        max_rows=16,
    ))
    print()
    trough = result.min_delivered_fraction
    worst = int(result.delivered_fraction.argmin())
    print(f"spike trough: epoch {worst} delivered {trough:.1%} of demand "
          f"(peak cpu {result.records[worst].peak_cpu_utilization:.0%}, "
          f"peak uplink {result.records[worst].peak_uplink_utilization:.0%})")
    print(f"untouched epochs stay at 100%: first epoch delivered "
          f"{result.records[0].delivered_fraction:.1%}")
    print(f"whole 48-epoch timeline solved in {result.wall_seconds:.2f}s wall "
          f"({result.fast_fraction:.0%} of epochs skipped the fill; "
          f"{result.warm_fraction:.0%} by reusing the previous allocation)\n")

    # 2. What the warm start buys on the congested spike plateau.
    cold = build_scenario("flash_crowd", clients=CLIENTS, seed=2006)
    cold.warm_start = False
    cold_result = cold.run()
    warm_passes = sum(record.solver_iterations for record in result.records)
    cold_passes = sum(record.solver_iterations for record in cold_result.records)
    print(f"solver work: warm {warm_passes} fill passes "
          f"({result.solve_seconds_total * 1e3:.1f} ms) vs cold {cold_passes} "
          f"({cold_result.solve_seconds_total * 1e3:.1f} ms)")


if __name__ == "__main__":
    main()
