#!/usr/bin/env python3
"""Reconfigure a live fleet mid-timeline, transactionally.

The catalogue's ``autoscaled_diurnal`` scenario is built from its declarative
document (``src/repro/scale/catalogue_data/06_autoscaled_diurnal.json``),
then *operated* while it runs:

1. a baseline run of three diurnal days under the predictive policy;
2. a :class:`ConfigTransaction` at the second morning commits an autoscale
   budget change (a higher ``min_sites`` floor) AND a region add (two spare
   sites forced active) as one atomic event — the printed diff is exactly
   what a reviewer would sign off on;
3. a transaction that tries to touch frozen structure (the epoch count) is
   rejected with its field path, leaving the timeline bit-identical;
4. rollback: undoing the committed transaction restores the baseline run,
   byte for byte.

Run with:  PYTHONPATH=src python examples/live_reconfig.py
"""

import os

from repro.scale import ConfigError, ConfigTransaction, build_scenario
from repro.scale.parallel import canonical_result_bytes

CLIENTS = int(os.environ.get("SCALE_EXAMPLE_CLIENTS", "100000"))
SEED = 2006
AT_EPOCH = 30  # the second morning of the 72-epoch diurnal timeline
CATALOGUE_WARMUP = 2  # the scenario's autoscaler warm-up, in epochs


def build():
    return build_scenario("autoscaled_diurnal", clients=CLIENTS, seed=SEED)


def main() -> None:
    # 1. Baseline: the scenario exactly as its data file describes it.
    baseline = build().run()
    print(f"baseline: {CLIENTS:,} clients, "
          f"mean {baseline.sites_in_service.mean():.1f} sites in service, "
          f"${baseline.total_provision_cost:,.0f} provision cost, "
          f"min delivered {baseline.min_delivered_fraction:.1%}")

    # 2. One atomic mid-run transaction: raise the autoscale floor and
    #    force two drained spares into service at epoch 30.
    timeline = build()
    txn = ConfigTransaction(timeline, at_epoch=AT_EPOCH)
    txn.set("autoscaler.min_sites", 12)
    txn.set("fleet.active_sites",
            [f"site{index:02d}" for index in range(18)])
    print(f"\ncommitting at epoch {AT_EPOCH}:")
    for change in txn.commit():
        print(f"  {change}")
    reconfigured = timeline.run()
    # Skip the controller's warm-up window: the new floor binds once the
    # spares it commissions go live, not the instant the event fires.
    settle = AT_EPOCH + 2 * CATALOGUE_WARMUP
    before = baseline.sites_in_service[settle:].min()
    after = reconfigured.sites_in_service[settle:].min()
    print(f"site floor after the commit settles: {before:.0f} -> {after:.0f} "
          f"(cost ${baseline.total_provision_cost:,.0f} -> "
          f"${reconfigured.total_provision_cost:,.0f})")

    # 3. Frozen structure stays frozen: the rejection names the field.
    bad = ConfigTransaction(timeline, at_epoch=AT_EPOCH)
    bad.set("epochs", 144)
    try:
        bad.commit()
    except ConfigError as error:
        print(f"\nrejected as expected [{error.field_path}]: {error}")
    assert (canonical_result_bytes(timeline.run())
            == canonical_result_bytes(reconfigured)), "rejection mutated state"

    # 4. Rollback restores the baseline, byte for byte.
    txn.rollback()
    restored = timeline.run()
    identical = (canonical_result_bytes(restored)
                 == canonical_result_bytes(baseline))
    print(f"\nafter rollback: run is byte-identical to baseline: {identical}")
    assert identical


if __name__ == "__main__":
    main()
