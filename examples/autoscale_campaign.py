#!/usr/bin/env python3
"""An autoscaled fleet rides a diurnal day, then faces a stochastic month.

Three acts:

1. run the catalogue's ``autoscaled_diurnal`` scenario and watch the
   predictive controller breathe with the load — spares warm up ahead of the
   evening peak, drain off overnight, and every decision is paid for in
   remap churn and dollars;
2. run a small E14 Monte-Carlo campaign: the same fleet shape against many
   seeded random event sequences (Poisson site failures, correlated regional
   outages, DoS attack onsets), reported as P50/P95/P99 availability, churn,
   and cost *distributions*;
3. sweep the autoscaler's utilization target to chart the churn-vs-SLO
   frontier — running hot is cheap until the same failures start landing on
   a fleet with no headroom.

Run with:  PYTHONPATH=src python examples/autoscale_campaign.py
(set SCALE_EXAMPLE_CLIENTS to shrink or grow the population; CI smoke uses
a small value).
"""

import os

from repro.analysis.report import format_series
from repro.scale import (
    StochasticCampaignRunner,
    build_scenario,
    run_churn_slo_frontier,
)

CLIENTS = int(os.environ.get("SCALE_EXAMPLE_CLIENTS", "100000"))
SEED = 2006


def act_one_autoscaled_diurnal() -> None:
    timeline = build_scenario("autoscaled_diurnal", clients=CLIENTS, seed=SEED)
    result = timeline.run()
    print(format_series(
        "epoch", [record.epoch for record in result.records], result.series(),
        title=f"autoscaled diurnal: {CLIENTS:,} clients, predictive policy, "
              f"{result.epoch_seconds / 3600:.0f}h epochs",
        max_rows=16,
    ))
    sites = result.sites_in_service
    print(f"\nfleet breathed between {sites.min()} and {sites.max()} sites; "
          f"{result.total_autoscale_actions} controller actions moved "
          f"{result.total_clients_remapped:,} clients through the ring")
    print(f"run cost ${result.total_provision_cost:,.0f}; a static fleet "
          f"pinned at the peak would have idled through every trough")
    print(f"delivered fraction never fell below "
          f"{result.min_delivered_fraction:.1%}\n")


def act_two_monte_carlo() -> None:
    runner = StochasticCampaignRunner(
        clients=CLIENTS, epochs=96, replicas=12, seed=SEED,
        max_sites=24, nominal_sites=16,
    )
    result = runner.run()
    print(result.report.render())
    availability = result.availability
    print(f"availability: p50 {availability.p50:.3f}, "
          f"p95 {availability.p95:.3f}, p99 {availability.p99:.3f} "
          f"(worst epoch anywhere: {availability.worst:.3f})")
    worst = result.worst_replica
    print(f"worst replica drew event seed {worst.event_seed} and dipped to "
          f"{worst.worst_delivered:.1%} delivered\n")


def act_three_frontier() -> None:
    frontier = run_churn_slo_frontier(
        targets=(0.5, 0.65, 0.8), clients=min(CLIENTS, 50_000),
        epochs=48, replicas=4, seed=SEED,
        max_sites=24, nominal_sites=16,
    )
    print(frontier.report.render())


def main() -> None:
    act_one_autoscaled_diurnal()
    act_two_monte_carlo()
    act_three_frontier()


if __name__ == "__main__":
    main()
