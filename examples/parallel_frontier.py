#!/usr/bin/env python3
"""A resumable multi-core frontier sweep — the campaign engine at full tilt.

Three acts:

1. run one E14 Monte-Carlo campaign twice — serially, then farmed over
   every core through ``ProcessPoolCampaignExecutor`` — and verify the two
   aggregate tables are *byte-identical* (worker count and scheduling
   order never change a number; only the wall clock moves);
2. sweep the churn-vs-SLO frontier across autoscaler utilization targets
   with a checkpointed run-table: every finished (point, replica) unit
   lands in ``checkpoint/`` as an atomic JSON record the moment it
   completes;
3. interrupt-proof the sweep: run the same frontier again against the
   same checkpoint directory and watch it resume — every already-finished
   unit is loaded instead of re-simulated, so the second pass is nearly
   free and the table still matches.

Run with:  PYTHONPATH=src python examples/parallel_frontier.py
(set SCALE_EXAMPLE_CLIENTS to shrink or grow the population; CI smoke uses
a small value.  Ctrl-C mid-sweep, then rerun, to see act three for real.)
"""

import os
import tempfile
import time
from pathlib import Path

from repro.scale import (
    ProcessPoolCampaignExecutor,
    StochasticCampaignRunner,
    canonical_result_bytes,
    run_churn_slo_frontier,
)

CLIENTS = int(os.environ.get("SCALE_EXAMPLE_CLIENTS", "100000"))
WORKERS = os.cpu_count() or 1
SEED = 2006
TARGETS = (0.5, 0.65, 0.8, 0.95)


def act_one_byte_identity() -> None:
    def campaign():
        return StochasticCampaignRunner(
            clients=CLIENTS, epochs=48, replicas=8, seed=SEED)

    start = time.perf_counter()
    serial = campaign().run()
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = campaign().run_parallel(n_workers=WORKERS)
    parallel_s = time.perf_counter() - start

    identical = canonical_result_bytes(serial) == canonical_result_bytes(parallel)
    print(f"E14 campaign, {CLIENTS:,} clients x 48 epochs x 8 replicas:")
    print(f"  serial          {serial_s:6.2f}s")
    print(f"  {WORKERS} worker(s)     {parallel_s:6.2f}s  "
          f"({serial_s / parallel_s:.2f}x)")
    print(f"  aggregate tables byte-identical: {identical}")
    if not identical:
        raise SystemExit("parallel result diverged from serial — file a bug")
    print()


def act_two_checkpointed_frontier(checkpoint: Path) -> bytes:
    start = time.perf_counter()
    result = run_churn_slo_frontier(
        clients=CLIENTS, epochs=32, replicas=6, seed=SEED, targets=TARGETS,
        n_workers=WORKERS, checkpoint_dir=checkpoint)
    elapsed = time.perf_counter() - start
    units = len(list(checkpoint.glob("*/unit-*.json")))
    print(result.report.render())
    print(f"\nfrontier swept {len(TARGETS)} utilization targets x 6 replicas "
          f"in {elapsed:.2f}s on {WORKERS} worker(s)")
    print(f"checkpoint holds {units} unit records under {checkpoint}\n")
    return canonical_result_bytes(result)


def act_three_resume(checkpoint: Path, baseline: bytes) -> None:
    start = time.perf_counter()
    result = run_churn_slo_frontier(
        clients=CLIENTS, epochs=32, replicas=6, seed=SEED, targets=TARGETS,
        n_workers=WORKERS, checkpoint_dir=checkpoint)
    elapsed = time.perf_counter() - start
    identical = canonical_result_bytes(result) == baseline
    print(f"resumed the same sweep from its checkpoint in {elapsed:.2f}s "
          f"(no unit re-simulated)")
    print(f"resumed table identical to the first pass: {identical}")
    if not identical:
        raise SystemExit("resume diverged from the first pass — file a bug")


def main() -> None:
    act_one_byte_identity()
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "frontier"
        baseline = act_two_checkpointed_frontier(checkpoint)
        act_three_resume(checkpoint, baseline)


if __name__ == "__main__":
    main()
