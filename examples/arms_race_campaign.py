#!/usr/bin/env python3
"""The discrimination arms race: adaptive throttling vs. neutralizer adoption.

Three acts:

1. run the catalogue's ``neutralizer_arms_race`` scenario and watch the
   game epoch by epoch: a maximally aggressive ISP escalates its throttle,
   loses its classifier to adoption, goes blanket (§3.6: throttle
   everything it cannot classify), bleeds collateral, and backs off — a
   limit cycle, not an equilibrium;
2. run a small E16 campaign sweeping ISP aggressiveness × adoption
   sensitivity, and read the frontier: where adoption is expensive the ISP's
   harm grows with aggressiveness, where it is cheap escalation backfires —
   the discriminated share collapses to the classifier's leakage floor;
3. cross-check one fluid adversary epoch against the packet-level
   ``repro.discrimination`` + ``repro.netsim`` path (delivered fractions
   within 10%).

Run with:  PYTHONPATH=src python examples/arms_race_campaign.py
(set SCALE_EXAMPLE_CLIENTS to shrink or grow the population; CI smoke uses
a small value).
"""

import os

from repro.analysis.report import format_series
from repro.scale import (
    AdversaryCampaignRunner,
    build_scenario,
    cross_validate_adversary,
)

CLIENTS = int(os.environ.get("SCALE_EXAMPLE_CLIENTS", "100000"))
SEED = 2006


def act_one_arms_race_timeline() -> None:
    timeline = build_scenario("neutralizer_arms_race", clients=CLIENTS, seed=SEED)
    result = timeline.run()
    print(format_series(
        "epoch", [record.epoch for record in result.records], result.series(),
        title=f"the arms race, epoch by epoch: {CLIENTS:,} clients, "
              f"{result.epoch_seconds / 60:.0f}-minute epochs",
        max_rows=14,
    ))
    moves = [(record.epoch, event) for record in result.records
             for event in record.adversary_events
             if not event.startswith("adoption")]
    print(f"\nstrategic moves ({len(moves)} total): "
          + ", ".join(f"e{epoch}:{event}" for epoch, event in moves[:8])
          + (" ..." if len(moves) > 8 else ""))
    print(f"final adoption {result.final_adoption_fraction:.1%}, "
          f"total re-key churn {result.total_clients_rekeyed:,} client-setups\n")


def act_two_frontier_campaign() -> None:
    runner = AdversaryCampaignRunner(
        clients=CLIENTS, epochs=100, replicas_per_point=2,
        aggressiveness=(0.0, 0.35, 0.7, 1.0), sensitivities=(2.0, 12.0),
        seed=SEED,
    )
    result = runner.run()
    print(result.report.render())
    defeated = result.self_defeating_points()
    if defeated:
        print("escalation backfired at: "
              + ", ".join(f"(aggressiveness {p.aggressiveness:g}, "
                          f"sensitivity {p.sensitivity:g})" for p in defeated))
    print()


def act_three_cross_validation() -> None:
    result = cross_validate_adversary(seed=SEED, duration_seconds=3.0)
    print(result.report.render())
    print(f"max relative error {result.max_relative_error:.1%} "
          f"(acceptance {result.tolerance:.0%})")


def main() -> None:
    act_one_arms_race_timeline()
    act_two_frontier_campaign()
    act_three_cross_validation()


if __name__ == "__main__":
    main()
