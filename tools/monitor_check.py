#!/usr/bin/env python3
"""Monitor-smoke gate: serve a live checkpointed E14 campaign over HTTP/SSE.

Launches a checkpointed :class:`StochasticCampaignRunner` campaign
through the process-pool executor with a
:class:`repro.scale.monitor.MonitorServer` attached, then plays the
operator role over plain HTTP while the campaign runs:

* ``/healthz``, ``/metrics``, and ``/progress`` must answer live with
  well-formed payloads (Prometheus text lines, JSON progress shape);
* the first N SSE events captured from ``/stream`` must be canonical
  envelopes (``seq``/``kind``/``schema``) with ``id:`` frames numbered
  strictly from 0, and a reconnect with ``Last-Event-ID`` must replay
  the remaining canonical sequence exactly once, in order;
* after completion, ``/events`` must serve bytes identical to
  ``EventLog.to_ndjson()`` and ``/verdicts`` must filter to
  ``kind == "detector"``.

The captured SSE stream is written to ``--out`` for upload as a CI
artifact.  Run from the repo root::

    PYTHONPATH=src python tools/monitor_check.py --clients 20000 \
        --out MONITOR_stream.ndjson

Exit status: 0 when every check passes, 1 on the first failure.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
from pathlib import Path
from urllib.request import Request, urlopen

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.scale import (  # noqa: E402  (path bootstrap above)
    EVENT_SCHEMA_VERSION,
    MonitorServer,
    StochasticCampaignRunner,
    Telemetry,
    attach_detectors,
)

_failures = 0


def check(condition: bool, message: str) -> None:
    global _failures
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures += 1


def get(url: str, *, headers=None, timeout=30):
    with urlopen(Request(url, headers=headers or {}), timeout=timeout) as r:
        return r.status, dict(r.headers), r.read().decode()


def parse_sse(text: str):
    """SSE frames -> (canonical [(id, data)], heartbeat count)."""
    canonical, heartbeats = [], 0
    for frame in text.strip().split("\n\n"):
        fields = {}
        for line in frame.splitlines():
            if ": " in line and not line.startswith(":"):
                key, value = line.split(": ", 1)
                fields[key] = value
        if "id" in fields:
            canonical.append((int(fields["id"]), fields["data"]))
        elif fields.get("event") == "unit_heartbeat":
            heartbeats += 1
    return canonical, heartbeats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=20_000)
    parser.add_argument("--replicas", type=int, default=6)
    parser.add_argument("--epochs", type=int, default=24)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--sse-events", type=int, default=8,
                        help="canonical SSE events to capture live")
    parser.add_argument("--out", default="MONITOR_stream.ndjson",
                        help="captured SSE data lines (CI artifact)")
    args = parser.parse_args(argv)

    telemetry = Telemetry(trace=False, events=True)
    attach_detectors(telemetry.events)
    runner = StochasticCampaignRunner(
        clients=args.clients, epochs=args.epochs, replicas=args.replicas,
        seed=args.seed, nominal_sites=4, max_sites=8, telemetry=telemetry,
    )
    monitor = MonitorServer.attach(telemetry, runner=runner)
    print(f"monitor serving at {monitor.url}")

    result_box = {}

    def drive() -> None:
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            result_box["result"] = runner.run_parallel(
                n_workers=args.workers, checkpoint_dir=checkpoint_dir,
                monitor=monitor)

    campaign = threading.Thread(target=drive, name="campaign", daemon=True)
    campaign.start()

    print("live endpoints (campaign running):")
    status, _, body = get(monitor.url + "/healthz")
    health = json.loads(body)
    check(status == 200 and health.get("status") == "ok",
          f"/healthz answers ok: {body.strip()}")

    status, _, metrics = get(monitor.url + "/metrics")
    check(status == 200, "/metrics answers 200")
    sample_lines = [line for line in metrics.splitlines()
                    if line and not line.startswith("#")]
    check(all(len(line.rsplit(None, 1)) == 2 for line in sample_lines),
          f"/metrics sample lines are '<name> <value>' ({len(sample_lines)} samples)")

    status, _, body = get(monitor.url + "/progress")
    progress = json.loads(body)
    check(status == 200 and {"units_total", "units_done", "complete",
                             "events", "eta_seconds"} <= set(progress),
          f"/progress has the live shape (units_done={progress.get('units_done')})")

    # Capture the first N canonical SSE events while units are in flight.
    status, _, stream_text = get(
        monitor.url + f"/stream?limit={args.sse_events}", timeout=600)
    captured, heartbeats = parse_sse(stream_text)
    check(len(captured) == args.sse_events,
          f"captured {len(captured)}/{args.sse_events} live SSE events "
          f"(+{heartbeats} heartbeat frames)")
    check([seq for seq, _ in captured] == list(range(args.sse_events)),
          "SSE ids are the canonical seqs, dense from 0")
    envelopes = [json.loads(data) for _, data in captured]
    check(all(event.get("schema") == EVENT_SCHEMA_VERSION
              and isinstance(event.get("seq"), int)
              and isinstance(event.get("kind"), str)
              for event in envelopes),
          "every SSE data line is a canonical envelope (seq/kind/schema)")
    check(envelopes[0]["kind"] == "campaign_started",
          f"stream opens with campaign_started (got {envelopes[0]['kind']!r})")

    campaign.join(timeout=600)
    check(not campaign.is_alive() and "result" in result_box,
          "campaign completed under the monitor")

    # Reconnect with Last-Event-ID: the rest of the stream, exactly once.
    expected = telemetry.events.to_ndjson().splitlines()
    remaining = len(expected) - len(captured)
    status, _, resumed_text = get(
        monitor.url + f"/stream?limit={remaining}",
        headers={"Last-Event-ID": str(captured[-1][0])}, timeout=600)
    resumed, _ = parse_sse(resumed_text)
    replayed = captured + resumed
    check([seq for seq, _ in replayed] == list(range(len(expected))),
          f"Last-Event-ID resume replays seqs exactly once "
          f"({len(replayed)} events)")
    check([data for _, data in replayed] == expected,
          "SSE data lines byte-match the canonical NDJSON export")

    status, headers, body = get(monitor.url + "/events?since_seq=-1&limit=100000")
    check(body == telemetry.events.to_ndjson(),
          "/events serves the canonical NDJSON byte-identically")
    check(headers.get("X-Remaining") == "0",
          "/events cursor reports nothing remaining")

    status, _, body = get(monitor.url + "/verdicts")
    verdict_events = [json.loads(line) for line in body.splitlines() if line]
    check(all(event["kind"] == "detector" for event in verdict_events),
          f"/verdicts filters to detector events ({len(verdict_events)} verdicts)")

    check("unit_heartbeat" not in telemetry.events.to_ndjson(),
          "heartbeats stayed quarantined out of the canonical log")

    out_path = Path(args.out)
    out_path.write_text("".join(data + "\n" for _, data in replayed))
    print(f"captured stream: {out_path} ({len(replayed)} events)")

    monitor.close()
    if _failures:
        print(f"monitor_check: {_failures} check(s) FAILED")
        return 1
    print("monitor_check: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
