#!/usr/bin/env python3
"""Perf-regression gate: fresh BENCH artifacts vs committed baselines.

Compares the per-benchmark mean wall time in freshly collected
pytest-benchmark artifacts (``BENCH_*.json``) against the committed
baselines under ``benchmarks/baselines/`` and fails when any benchmark
regresses past its tolerance — turning the bench-trajectory uploads from
a write-only archive into an enforced trajectory.

Baselines are trimmed, canonical JSON (one file per artifact, same
filename): per benchmark its ``fullname``, mean and stddev, plus the
machine it was pinned on.  Per-benchmark tolerance overrides live in
``benchmarks/baselines/tolerances.json`` (``{"fullname": ratio}``); the
default ratio covers ordinary CI-runner noise but is strictly below 2x,
so a genuine 2x slowdown always fails.

Usage, from the repo root::

    python tools/perf_gate.py BENCH_scale.json BENCH_timeline.json ...
    python tools/perf_gate.py --update BENCH_*.json   # reseed baselines

Exit status: 0 all benchmarks within tolerance, 1 regression or missing
baseline/benchmark, 2 unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE_DIR = REPO / "benchmarks" / "baselines"
#: Default regression tolerance: fresh mean may be at most this multiple
#: of the baseline mean.  Forgiving of runner noise, strictly below 2x.
DEFAULT_TOLERANCE = 1.75


def _load_json(path: Path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"perf_gate: unreadable {path}: {exc}", file=sys.stderr)
        return None


def _fresh_means(data) -> dict:
    """``{fullname: mean_seconds}`` from a pytest-benchmark artifact."""
    means = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        if name and "mean" in stats:
            means[name] = float(stats["mean"])
    return means


def _baseline_payload(source_name: str, data) -> dict:
    """The trimmed baseline document written by ``--update``."""
    machine = (data.get("machine_info") or {}).get("cpu") or {}
    return {
        "source": source_name,
        "machine": machine.get("brand_raw", "unknown"),
        "benchmarks": [
            {
                "fullname": bench.get("fullname") or bench.get("name"),
                "mean": float(bench["stats"]["mean"]),
                "stddev": float(bench["stats"].get("stddev", 0.0)),
                "rounds": int(bench["stats"].get("rounds", 0)),
            }
            for bench in data.get("benchmarks", [])
            if (bench.get("fullname") or bench.get("name"))
            and "mean" in (bench.get("stats") or {})
        ],
    }


def update_baselines(paths, baseline_dir: Path) -> int:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for path in paths:
        data = _load_json(Path(path))
        if data is None:
            return 2
        payload = _baseline_payload(Path(path).name, data)
        if not payload["benchmarks"]:
            print(f"perf_gate: {path}: no benchmarks to baseline",
                  file=sys.stderr)
            return 2
        target = baseline_dir / Path(path).name
        with open(target, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written: {target} "
              f"({len(payload['benchmarks'])} benchmarks)")
    return 0


def check(paths, baseline_dir: Path, tolerance: float) -> int:
    overrides = {}
    tolerances_file = baseline_dir / "tolerances.json"
    if tolerances_file.is_file():
        overrides = _load_json(tolerances_file)
        if overrides is None:
            return 2

    failures = 0
    header = (f"{'benchmark':<58} {'base ms':>10} {'fresh ms':>10} "
              f"{'ratio':>7} {'limit':>7}  status")
    print(header)
    print("-" * len(header))
    for path in paths:
        fresh_data = _load_json(Path(path))
        if fresh_data is None:
            return 2
        baseline_path = baseline_dir / Path(path).name
        if not baseline_path.is_file():
            print(f"perf_gate: missing baseline {baseline_path} "
                  f"(seed it with --update)", file=sys.stderr)
            failures += 1
            continue
        baseline = _load_json(baseline_path)
        if baseline is None:
            return 2
        fresh = _fresh_means(fresh_data)
        for entry in baseline.get("benchmarks", []):
            name = entry["fullname"]
            limit = float(overrides.get(name, tolerance))
            short = name if len(name) <= 58 else "..." + name[-55:]
            if name not in fresh:
                print(f"{short:<58} {'-':>10} {'-':>10} {'-':>7} "
                      f"{limit:>6.2f}x  MISSING")
                failures += 1
                continue
            base_mean = float(entry["mean"])
            fresh_mean = fresh.pop(name)
            ratio = fresh_mean / base_mean if base_mean > 0 else float("inf")
            ok = ratio <= limit
            print(f"{short:<58} {base_mean * 1e3:>10.3f} "
                  f"{fresh_mean * 1e3:>10.3f} {ratio:>6.2f}x {limit:>6.2f}x  "
                  f"{'ok' if ok else 'REGRESSION'}")
            if not ok:
                failures += 1
        for name in sorted(fresh):
            # Present in the fresh run but not yet pinned: informational —
            # reseed baselines to start gating it.
            short = name if len(name) <= 58 else "..." + name[-55:]
            print(f"{short:<58} {'-':>10} {fresh[name] * 1e3:>10.3f} "
                  f"{'-':>7} {'-':>7}  new (unpinned)")
    if failures:
        print(f"perf_gate: {failures} failure(s)", file=sys.stderr)
        return 1
    print("perf_gate: all benchmarks within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+",
                        help="fresh pytest-benchmark JSON artifacts")
    parser.add_argument("--baseline-dir", type=Path,
                        default=DEFAULT_BASELINE_DIR,
                        help="committed baseline directory "
                             "(default benchmarks/baselines)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help=f"default mean-ratio limit "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--update", action="store_true",
                        help="reseed baselines from the given artifacts "
                             "instead of checking")
    args = parser.parse_args(argv)
    missing = [path for path in args.artifacts if not Path(path).is_file()]
    if missing:
        for path in missing:
            print(f"perf_gate: missing artifact: {path}", file=sys.stderr)
        return 2
    if args.update:
        return update_baselines(args.artifacts, args.baseline_dir)
    return check(args.artifacts, args.baseline_dir, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
