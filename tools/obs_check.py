#!/usr/bin/env python3
"""Obs-smoke gate: stream a catalogue scenario with an injected outage.

Builds one named catalogue scenario, injects a seeded
:class:`CorrelatedRegionalOutage` through the stochastic compiler, runs
the timeline with the structured event stream and the detector suite
attached, and asserts that the black-hole detector localizes the injected
region exactly: one verdict per failed site naming the correct onset
epoch, a regional grouping verdict naming the full site block, and zero
verdicts outside the injected fault schedule.  The merged NDJSON event
log is written out for upload as a CI artifact.

Run from the repo root::

    PYTHONPATH=src python tools/obs_check.py --clients 20000 \
        --out OBS_events.ndjson

Exit status: 0 when localization is exact, 1 on any miss, wrong onset,
or false positive.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.scale import (  # noqa: E402  (path bootstrap above)
    CorrelatedRegionalOutage,
    Telemetry,
    attach_detectors,
    build_scenario,
    compile_events,
    compile_schedule,
    verdicts,
)


def _find_clean_seed(process, *, epochs, site_names, start_seed):
    """First seed whose schedule is one single-block regional outage.

    Deterministic search: the injection must be unambiguous (one outage,
    no merged/overlapping windows) so the assertions below are exact.
    """
    for seed in range(start_seed, start_seed + 10_000):
        schedule = compile_schedule([process], seed=seed, epochs=epochs,
                                    site_names=site_names)
        if (len(schedule.regional_outages) == 1
                and len(schedule.downtime) == len(
                    schedule.regional_outages[0].sites)):
            return seed, schedule
    raise SystemExit("obs_check: no clean injection seed found")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="diurnal_week",
                        help="catalogue scenario to stream "
                             "(default diurnal_week)")
    parser.add_argument("--clients", type=int, default=20_000,
                        help="population size (default 20000)")
    parser.add_argument("--seed", type=int, default=2006,
                        help="scenario seed (default 2006)")
    parser.add_argument("--outage-seed", type=int, default=1,
                        help="first candidate seed for the injected outage")
    parser.add_argument("--out", default="OBS_events.ndjson",
                        help="NDJSON event-log artifact path")
    args = parser.parse_args(argv)

    telemetry = Telemetry(trace=False, events=True)
    attach_detectors(telemetry.events)
    timeline = build_scenario(args.scenario, clients=args.clients,
                              seed=args.seed, telemetry=telemetry)
    site_names = [site.name for site in timeline.fleet.sites]

    process = CorrelatedRegionalOutage(outages_per_epoch=0.02,
                                       group_fraction=0.25,
                                       mean_downtime_epochs=6.0)
    outage_seed, schedule = _find_clean_seed(
        process, epochs=timeline.epochs, site_names=site_names,
        start_seed=args.outage_seed)
    injected = compile_events([process], seed=outage_seed,
                              epochs=timeline.epochs, site_names=site_names)
    timeline.events = tuple(sorted((*timeline.events, *injected),
                                   key=lambda event: event.at_epoch))
    outage = schedule.regional_outages[0]
    print(f"{args.scenario}: injected regional outage (seed {outage_seed}) — "
          f"sites {[site_names[s] for s in outage.sites]}, "
          f"onset epoch {outage.onset_epoch}, until {outage.until_epoch}")

    timeline.run()
    telemetry.events.write_ndjson(args.out)
    print(f"event log: {args.out} ({len(telemetry.events)} events)")

    failures = 0
    black_hole = [v.payload for v in verdicts(telemetry.events)
                  if v.payload.get("detector") == "black_hole"]
    for payload in black_hole:
        if not schedule.covers(payload["site_index"], payload["onset_epoch"]):
            print(f"FALSE POSITIVE: {payload['site']} "
                  f"onset {payload['onset_epoch']}", file=sys.stderr)
            failures += 1
    for site in outage.sites:
        hits = [p for p in black_hole if p["site_index"] == site
                and p["onset_epoch"] == outage.onset_epoch]
        if len(hits) == 1:
            print(f"localized: {site_names[site]} @ epoch "
                  f"{outage.onset_epoch}")
        else:
            print(f"MISS: {site_names[site]} expected one verdict at onset "
                  f"{outage.onset_epoch}, got {len(hits)}", file=sys.stderr)
            failures += 1
    regional = [v.payload for v in verdicts(telemetry.events)
                if v.payload.get("detector") == "black_hole_region"]
    block = [p for p in regional
             if p["onset_epoch"] == outage.onset_epoch
             and sorted(p["site_indices"]) == sorted(outage.sites)]
    if len(outage.sites) > 1:
        if block:
            print(f"regional verdict: {block[0]['sites']} @ epoch "
                  f"{outage.onset_epoch}")
        else:
            print("MISS: no regional verdict naming the injected block",
                  file=sys.stderr)
            failures += 1
    if failures:
        print(f"obs_check: {failures} failure(s)", file=sys.stderr)
        return 1
    print("obs_check: black-hole localization exact, zero false positives")
    return 0


if __name__ == "__main__":
    sys.exit(main())
