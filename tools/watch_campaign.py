#!/usr/bin/env python3
"""Terminal dashboard for a live campaign monitor.

Connects to a :class:`repro.scale.monitor.MonitorServer` and renders, in
place, the operator view of a running campaign: a unit progress bar with
ETA, the per-phase cost table (the same rows ``tools/perf_report.py``
prints post-hoc), the latest detector verdicts, and a live trajectory
table built from the ``epoch`` event stream — through the same
:func:`repro.analysis.report.format_frontier_table` code path the
EXPERIMENTS.md frontier tables come from, so the live view and the
quoted tables can never drift apart.

Run from the repo root, against a campaign started with
``run_parallel(monitor=MonitorServer.attach(telemetry))``::

    PYTHONPATH=src python tools/watch_campaign.py --url http://127.0.0.1:8765

``--once`` renders a single frame and exits (scripting/CI); otherwise
the dashboard polls ``/progress`` and pages ``/events`` with a
strictly-after cursor until the campaign completes.

Exit status: 0 when the watched campaign completes (or after ``--once``),
1 when the monitor is unreachable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from urllib.error import URLError
from urllib.request import urlopen

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.report import format_frontier_table  # noqa: E402
from repro.scale.telemetry import format_phase_table  # noqa: E402

#: The live trajectory table, one row per ``epoch`` event payload.
TRAJECTORY_COLUMNS = (
    ("epoch", "epoch"),
    ("delivered", "delivered_fraction"),
    ("p95 ms", lambda payload: payload.get("latency_p95_seconds", 0.0) * 1e3),
    ("slo viol", lambda payload: payload.get("latency_slo_violations", 0)),
    ("sites", lambda payload: payload.get("sites_in_service", "")),
    ("demand x", lambda payload: payload.get("demand_multiplier", "")),
)

BAR_WIDTH = 32


def fetch_json(url: str):
    with urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def fetch_ndjson(url: str):
    with urlopen(url, timeout=10) as response:
        next_seq = int(response.headers.get("X-Next-Seq", "-1"))
        remaining = int(response.headers.get("X-Remaining", "0"))
        lines = [json.loads(line)
                 for line in response.read().decode().splitlines() if line]
    return lines, next_seq, remaining


def progress_bar(done, total) -> str:
    if not total:
        return "[" + "-" * BAR_WIDTH + "]"
    filled = int(round(BAR_WIDTH * min(1.0, done / total)))
    return "[" + "#" * filled + "-" * (BAR_WIDTH - filled) + "]"


def describe_verdict(event) -> str:
    detail = {key: value for key, value in sorted(event.items())
              if key not in ("seq", "kind", "schema", "detector")}
    pairs = " ".join(f"{key}={value}" for key, value in detail.items())
    return f"  seq {event['seq']:>5}  {event.get('detector', '?'):<22} {pairs}"


def render_frame(progress, epochs, verdicts_seen, *, epoch_rows) -> str:
    lines = []
    total = progress.get("units_total")
    done = progress.get("units_done") or 0
    experiment = progress.get("experiment") or "(no campaign yet)"
    percent = f"{100.0 * done / total:5.1f}%" if total else "     "
    eta = progress.get("eta_seconds")
    elapsed = progress.get("elapsed_seconds")
    lines.append(
        f"{experiment}  {done}/{total if total is not None else '?'} units  "
        f"{progress_bar(done, total)} {percent}"
        + (f"  elapsed {elapsed:.1f}s" if elapsed is not None else "")
        + (f"  eta {eta:.1f}s" if eta is not None else "")
        + ("  COMPLETE" if progress.get("complete") else "")
    )
    in_flight = progress.get("units_in_flight") or []
    if in_flight:
        markers = ", ".join(
            str(rec.get("label") or rec.get("unit"))
            + (f" (pid {rec['pid']})" if rec.get("pid") else "")
            for rec in in_flight)
        lines.append(f"in flight: {markers}")
    lines.append("")
    phases = progress.get("phases") or {}
    if phases:
        top = dict(list(phases.items())[:6])
        lines.append(format_phase_table(top, title="per-phase cost (top 6)"))
        lines.append("")
    if verdicts_seen:
        lines.append(f"detector verdicts ({len(verdicts_seen)} total, "
                     f"latest {min(5, len(verdicts_seen))}):")
        lines.extend(describe_verdict(event) for event in verdicts_seen[-5:])
        lines.append("")
    if epochs:
        lines.append(format_frontier_table(
            TRAJECTORY_COLUMNS, epochs[-epoch_rows:],
            title=f"trajectory (last {min(epoch_rows, len(epochs))} epochs "
                  f"of {len(epochs)} seen)"))
        lines.append("")
    counts = (progress.get("events") or {}).get("by_kind") or {}
    if counts:
        summary = "  ".join(f"{kind}:{count}"
                            for kind, count in counts.items())
        lines.append(f"events: {summary}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8765",
                        help="monitor base URL (MonitorServer.url)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between frames")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit")
    parser.add_argument("--epoch-rows", type=int, default=12,
                        help="trajectory rows to show")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing in place")
    args = parser.parse_args(argv)

    base = args.url.rstrip("/")
    cursor = -1
    epochs = []
    verdicts_seen = []
    while True:
        try:
            progress = fetch_json(base + "/progress")
            while True:
                events, cursor, remaining = fetch_ndjson(
                    base + f"/events?since_seq={cursor}&limit=2000")
                for event in events:
                    if event.get("kind") == "epoch":
                        epochs.append(event)
                    elif event.get("kind") == "detector":
                        verdicts_seen.append(event)
                if not remaining:
                    break
        except (URLError, OSError) as exc:
            print(f"watch_campaign: cannot reach {base}: {exc}",
                  file=sys.stderr)
            return 1
        frame = render_frame(progress, epochs, verdicts_seen,
                             epoch_rows=args.epoch_rows)
        if not args.no_clear and not args.once and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(frame)
        if args.once or progress.get("complete"):
            return 0
        time.sleep(args.interval)


if __name__ == "__main__":
    raise SystemExit(main())
