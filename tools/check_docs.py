#!/usr/bin/env python3
"""Docs gate: relative links must resolve and python snippets must compile.

Checks every markdown file under docs/ plus the top-level README.md,
EXPERIMENTS.md, ROADMAP.md and CHANGES.md:

* every relative markdown link ``[text](target)`` must point at an existing
  file (and, for ``file.md#anchor`` links, at a heading that slugifies to
  the anchor);
* every fenced ```python code block must byte-compile (the snippet
  equivalent of ``python -m compileall``) — snippets are not executed, so
  they stay cheap and side-effect free.

Exits non-zero with one line per problem, so the CI docs job fails loudly
and locally ``python tools/check_docs.py`` tells you what to fix.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    list((REPO / "docs").glob("**/*.md"))
    + [REPO / name for name in ("README.md", "EXPERIMENTS.md", "ROADMAP.md",
                                "CHANGES.md")]
)

LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")
FENCE = re.compile(r"^```(\w*)\s*$")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of one markdown heading."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_~]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    slugs = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        elif not in_fence and line.startswith("#"):
            # Fenced regions are skipped so code comments like "# foo" never
            # masquerade as anchors.
            slugs.add(slugify(line.lstrip("#")))
    return slugs


def check_links(path: Path, problems: list) -> None:
    for match in LINK.finditer(path.read_text()):
        target = match.group(1).strip()
        # Strip an optional markdown title — [text](path "Title") — and
        # angle-bracket form, so titled links are checked, not skipped.
        target = re.sub(r"""\s+("[^"]*"|'[^']*')$""", "", target).strip("<>")
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external links are not this gate's business
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve() if file_part else path
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO)}: broken link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if slugify(anchor) not in heading_slugs(resolved):
                problems.append(
                    f"{path.relative_to(REPO)}: missing anchor -> {target}"
                )


def check_snippets(path: Path, problems: list) -> None:
    lines = path.read_text().splitlines()
    block: list = []
    language = None
    start = 0
    for number, line in enumerate(lines, start=1):
        fence = FENCE.match(line)
        if fence and language is None:
            language = fence.group(1).lower()
            block, start = [], number
        elif line.strip() == "```" and language is not None:
            if language == "python":
                source = "\n".join(block)
                try:
                    compile(source, f"{path.name}:{start}", "exec")
                except SyntaxError as error:
                    problems.append(
                        f"{path.relative_to(REPO)}:{start}: snippet does not "
                        f"compile ({error.msg}, line {error.lineno})"
                    )
            language = None
        elif language is not None:
            block.append(line)


def main() -> int:
    problems: list = []
    missing = [path for path in DOC_FILES if not path.exists()]
    for path in missing:
        problems.append(f"expected doc file is missing: {path.relative_to(REPO)}")
    for path in DOC_FILES:
        if path.exists():
            check_links(path, problems)
            check_snippets(path, problems)
    if problems:
        print(f"docs check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    checked = len([path for path in DOC_FILES if path.exists()])
    print(f"docs check: {checked} files OK (links resolve, snippets compile)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
