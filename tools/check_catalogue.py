#!/usr/bin/env python3
"""Catalogue gate: the scenario data files must stay valid and canonical.

Checks ``src/repro/scale/catalogue_data/``:

* every ``*.json`` file decodes strictly through :class:`ScenarioConfig`
  (unknown fields, wrong types, failed validators -> precise field path);
* filenames carry contiguous numeric prefixes (``NN_name.json``) matching
  the document's own ``name``, so the sorted glob *is* the catalogue order;
* the loaded set is exactly what ``scenario_names()`` serves — no orphan
  files, no scenario without a document;
* every file's bytes are canonical (re-serializing changes nothing), so a
  hand edit that drifts from the codec's shape fails here, not at review;
* every document round-trips (``from_json(to_json(x)) == x``) and builds a
  timeline at a tiny population — the cheap end-to-end smoke.

Exits non-zero with one line per problem; locally run
``PYTHONPATH=src python tools/check_catalogue.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.scale.catalogue import CATALOGUE_DATA_DIR, scenario_names  # noqa: E402
from repro.scale.config import ConfigError, ScenarioConfig, load_config  # noqa: E402

FILENAME = re.compile(r"^(\d{2})_([a-z0-9_]+)\.json$")
SMOKE_CLIENTS = 500
SMOKE_SEED = 2006


def main() -> int:
    problems: list = []
    files = sorted(CATALOGUE_DATA_DIR.glob("*.json"))
    if not files:
        print(f"catalogue check: no data files under {CATALOGUE_DATA_DIR}")
        return 1

    loaded = {}
    for position, path in enumerate(files):
        match = FILENAME.match(path.name)
        if not match:
            problems.append(f"{path.name}: filename is not NN_name.json")
            continue
        if int(match.group(1)) != position:
            problems.append(
                f"{path.name}: numeric prefix {match.group(1)} breaks the "
                f"contiguous order (expected {position:02d})")
        try:
            config = load_config(path)
        except ConfigError as exc:
            problems.append(f"{path.name}: does not validate: {exc}")
            continue
        if config.name != match.group(2):
            problems.append(
                f"{path.name}: document name {config.name!r} does not match "
                f"the filename")
        if config.name in loaded:
            problems.append(f"{path.name}: duplicate scenario {config.name!r}")
        loaded[config.name] = config
        if path.read_text(encoding="utf-8") != config.to_json():
            problems.append(
                f"{path.name}: bytes are not canonical (re-run dump_config)")
        if ScenarioConfig.from_json(config.to_json()) != config:
            problems.append(f"{path.name}: does not round-trip through JSON")

    catalogue = scenario_names()
    if list(loaded) != catalogue:
        problems.append(
            f"data files {list(loaded)} != catalogue {catalogue}")

    for name, config in loaded.items():
        try:
            timeline = config.build(clients=SMOKE_CLIENTS, seed=SMOKE_SEED)
        except Exception as exc:  # the gate reports, it does not crash
            problems.append(f"{name}: does not build: {exc}")
            continue
        if timeline.config is not config:
            problems.append(f"{name}: built timeline lost its config")

    if problems:
        print(f"catalogue check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"catalogue check: {len(files)} scenario documents OK "
          f"(valid, canonical, ordered, build at {SMOKE_CLIENTS} clients)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
