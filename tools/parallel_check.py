#!/usr/bin/env python3
"""The parallel-equivalence gate: byte-identity and interrupted resume.

Two modes, both exercised by the ``parallel-equivalence`` CI job:

``equivalence``
    Runs a tiny E14 and E16 campaign serially, at ``n_workers=1``, and at
    ``n_workers=4``, and fails on any byte difference between their
    canonical aggregate tables (wall-clock fields excluded — everything
    else must match exactly).

``resume``
    Launches a checkpointed frontier sweep in a child process, SIGINTs it
    mid-run, and asserts that (a) the interrupt left a partial checkpoint,
    (b) re-running completes from that checkpoint to a result
    byte-identical to an uninterrupted sweep, and (c) no finished unit was
    re-run (their checkpoint records are bit-for-bit untouched).

Run with:  PYTHONPATH=src python tools/parallel_check.py equivalence
           PYTHONPATH=src python tools/parallel_check.py resume
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scale import (  # noqa: E402
    AdversaryCampaignRunner,
    StochasticCampaignRunner,
    canonical_result_bytes,
    run_churn_slo_frontier,
)

CLIENTS = int(os.environ.get("PARALLEL_CHECK_CLIENTS", "20000"))
SEED = 2006

FRONTIER_KWARGS = dict(
    clients=CLIENTS, epochs=24, replicas=8, seed=SEED,
    targets=(0.85, 0.95),
)


def make_e14():
    return StochasticCampaignRunner(
        clients=CLIENTS, epochs=20, replicas=8, seed=SEED)


def make_e16():
    return AdversaryCampaignRunner(
        clients=CLIENTS, epochs=16, replicas_per_point=2, seed=SEED,
        aggressiveness=(0.3, 0.8), sensitivities=(6.0,))


def check_equivalence() -> int:
    failures = 0
    for label, factory in (("E14", make_e14), ("E16", make_e16)):
        serial = canonical_result_bytes(factory().run())
        for n_workers in (1, 4):
            candidate = canonical_result_bytes(
                factory().run_parallel(n_workers=n_workers))
            if candidate == serial:
                print(f"ok: {label} n_workers={n_workers} is byte-identical "
                      f"to serial ({len(serial):,} canonical bytes)")
            else:
                print(f"FAIL: {label} n_workers={n_workers} diverged from "
                      f"the serial result")
                failures += 1
    return failures


def _run_frontier_child(checkpoint: str) -> None:
    """Child entry point: a checkpointed frontier sweep, interruptible."""
    run_churn_slo_frontier(**FRONTIER_KWARGS, n_workers=2,
                           checkpoint_dir=checkpoint)


def check_resume() -> int:
    baseline = canonical_result_bytes(run_churn_slo_frontier(**FRONTIER_KWARGS))
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "frontier"
        child = subprocess.Popen(
            [sys.executable, __file__, "_frontier-child", str(checkpoint)],
            env={**os.environ, "PYTHONPATH": str(Path(__file__).resolve()
                                                 .parent.parent / "src")},
        )
        # wait until at least one unit is checkpointed, then interrupt
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if len(list(checkpoint.glob("*/unit-*.json"))) >= 2:
                break
            if child.poll() is not None:
                print("FAIL: frontier child finished before it could be "
                      "interrupted — enlarge PARALLEL_CHECK_CLIENTS")
                return 1
            time.sleep(0.05)
        child.send_signal(signal.SIGINT)
        child.wait(timeout=120)
        completed = sorted(checkpoint.glob("*/unit-*.json"))
        total_units = FRONTIER_KWARGS["replicas"] * len(FRONTIER_KWARGS["targets"])
        if not completed:
            print("FAIL: SIGINT left no checkpointed units")
            return 1
        if len(completed) >= total_units:
            print("FAIL: child completed every unit before the interrupt — "
                  "nothing left to resume; enlarge PARALLEL_CHECK_CLIENTS")
            return 1
        print(f"interrupted with {len(completed)}/{total_units} units "
              f"checkpointed (child exit {child.returncode})")
        before = {path: path.read_bytes() for path in completed}

        resumed = run_churn_slo_frontier(**FRONTIER_KWARGS, n_workers=2,
                                         checkpoint_dir=checkpoint)
        if canonical_result_bytes(resumed) != baseline:
            print("FAIL: resumed frontier diverged from the uninterrupted run")
            return 1
        rewritten = [str(path) for path, content in before.items()
                     if path.read_bytes() != content]
        if rewritten:
            print(f"FAIL: resume re-ran finished units: {rewritten}")
            return 1
        print(f"ok: resume completed the remaining "
              f"{total_units - len(completed)} units and left all "
              f"{len(completed)} finished records untouched; aggregate "
              f"table byte-identical to the uninterrupted sweep")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode",
                        choices=("equivalence", "resume", "_frontier-child"))
    parser.add_argument("checkpoint", nargs="?")
    args = parser.parse_args()
    if args.mode == "_frontier-child":
        _run_frontier_child(args.checkpoint)
        return 0
    if args.mode == "equivalence":
        return 1 if check_equivalence() else 0
    return check_resume()


if __name__ == "__main__":
    sys.exit(main())
