#!/usr/bin/env python3
"""Per-phase wall-clock report over telemetry traces and BENCH artifacts.

Two modes:

* **Render** (default): given one or more pytest-benchmark JSON artifacts
  (``BENCH_*.json``), print each benchmark's embedded per-phase breakdown
  — count, total wall, P50/P95/max — the ``extra_info["phases"]`` section
  the scale benchmarks attach from their campaign traces.  Exits non-zero
  when a requested artifact does not exist (naming each missing file —
  never a silently partial table), or when no artifact contributes a
  single phase row, so CI notices a benchmark that silently stopped
  tracing.

* **Smoke** (``--scenario NAME``): build and run one named catalogue
  scenario with tracing telemetry, print its phase table, and optionally
  export the raw trace (``--trace out.jsonl``) and the metrics registry
  (``--prom out.prom``, Prometheus text exposition).  Exits non-zero when
  the run records no phases — the CI telemetry smoke step.

Run from the repo root::

    PYTHONPATH=src python tools/perf_report.py BENCH_*.json
    PYTHONPATH=src python tools/perf_report.py --scenario flash_crowd \
        --clients 5000 --trace trace.jsonl --prom metrics.prom
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.scale import (  # noqa: E402  (path bootstrap above)
    Telemetry,
    format_phase_table,
    phase_breakdown,
    run_scenario,
    scenario_names,
)


def render_artifacts(paths) -> int:
    """Print the phase tables embedded in BENCH artifacts; 0 if any rows.

    Parallel-campaign benchmarks additionally carry an
    ``extra_info["parallel"]`` scaling section (worker count, serial vs
    parallel wall time, speedup/efficiency), rendered as a one-line summary
    under the phase table.
    """
    missing = [path for path in paths if not Path(path).is_file()]
    if missing:
        # Fail before rendering anything: a partial table over the
        # artifacts that do exist would read as a complete report.
        for path in missing:
            print(f"perf_report: missing artifact: {path}", file=sys.stderr)
        return 2
    rows = 0
    for path in paths:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            return 1
        for bench in data.get("benchmarks", []):
            extra = bench.get("extra_info") or {}
            phases = extra.get("phases")
            if phases:
                rows += len(phases)
                print(format_phase_table(
                    phases, title=f"{Path(path).name} :: {bench['name']}"))
            parallel = extra.get("parallel")
            if parallel:
                speedup = parallel.get("speedup", 0.0)
                print(f"{Path(path).name} :: {bench['name']} scaling: "
                      f"{parallel.get('n_workers', '?')} workers, "
                      f"serial {parallel.get('serial_s', 0.0):.2f}s -> "
                      f"parallel {parallel.get('parallel_s', 0.0):.2f}s "
                      f"({speedup:.2f}x, "
                      f"{parallel.get('efficiency', 0.0):.0%} efficiency)")
            if phases or parallel:
                print()
    if rows == 0:
        print("no phase rows found in any artifact", file=sys.stderr)
        return 1
    return 0


def run_smoke(args) -> int:
    """Run one catalogue scenario traced; print/export its phase table."""
    if args.scenario not in scenario_names():
        print(f"unknown scenario {args.scenario!r}; one of: "
              f"{', '.join(scenario_names())}", file=sys.stderr)
        return 1
    telemetry = Telemetry()
    kwargs = {"clients": args.clients, "seed": args.seed,
              "telemetry": telemetry}
    result = run_scenario(args.scenario, **kwargs)
    phases = phase_breakdown(telemetry)
    print(format_phase_table(
        phases,
        title=(f"{args.scenario} ({result.n_clients} clients, "
               f"{result.epochs} epochs, {result.wall_seconds * 1e3:.1f} ms)"),
    ))
    if args.trace:
        telemetry.tracer.write_jsonl(args.trace)
        print(f"trace: {args.trace} ({len(telemetry.tracer.spans)} spans)")
    if args.prom:
        with open(args.prom, "w") as handle:
            handle.write(telemetry.metrics.prometheus_text())
        print(f"metrics: {args.prom}")
    if not phases:
        print("scenario run recorded no phases", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="*",
                        help="pytest-benchmark JSON files to render")
    parser.add_argument("--scenario", help="run this catalogue scenario "
                        "with tracing telemetry instead of rendering files")
    parser.add_argument("--clients", type=int, default=5000,
                        help="population size for --scenario (default 5000)")
    parser.add_argument("--seed", type=int, default=2006,
                        help="scenario seed (default 2006)")
    parser.add_argument("--trace", help="write the span trace as JSONL here")
    parser.add_argument("--prom", help="write the metrics registry in "
                        "Prometheus text format here")
    args = parser.parse_args(argv)
    if args.scenario:
        return run_smoke(args)
    if not args.artifacts:
        parser.error("either BENCH artifacts or --scenario is required")
    return render_artifacts(args.artifacts)


if __name__ == "__main__":
    sys.exit(main())
