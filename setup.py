"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-use-pep517`` works in fully offline environments
where PEP 660 editable builds cannot fetch their build requirements.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Technical Approach to Net Neutrality' (HotNets 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
