"""Host-stack and deployment tests: client/server stacks, offload, multihoming, envelope."""

import pytest

from repro.core import (
    ENVELOPE_DATA,
    ENVELOPE_HANDSHAKE_DATA,
    AdaptiveSelector,
    FirstChoiceSelector,
    MultihomedSite,
    RoundRobinSelector,
    WeightedSelector,
    neutralize_isp,
    pack_envelope,
    pack_inner,
    parse_envelope,
    parse_inner,
)
from repro.exceptions import NeutralizerError, ShimError
from repro.netsim import TraceCollector
from repro.packet import Dscp, UdpHeader, ip, udp_packet
from repro.units import mbps, msec


@pytest.fixture
def deployed(small_topology, rng, anycast_address):
    """A small neutralized deployment with ann (client) and google (server)."""
    trace = TraceCollector("att")
    small_topology.router("att-br").ingress_hooks.append(trace.router_hook())
    deployment = neutralize_isp(small_topology, "cogent", anycast_address, rng=rng)
    server = deployment.attach_server(small_topology.host("google"), dns_name="www.google.com")
    client = deployment.attach_client(small_topology.host("ann"), publish_key=True)
    deployment.bootstrap_client("ann", "google")
    return small_topology, deployment, client, server, trace


def _echo_server(host, port=5000, reply_prefix=b"echo:"):
    received = []

    def handler(packet, h):
        received.append(packet)
        reply = udp_packet(h.address, packet.source, reply_prefix + packet.payload,
                           source_port=port, destination_port=packet.udp.source_port)
        h.send(reply)

    host.register_port_handler(port, handler)
    return received


class TestEnvelope:
    def test_inner_roundtrip_with_udp_and_refresh(self):
        udp = UdpHeader(source_port=1111, destination_port=2222)
        inner = pack_inner(b"payload", udp=udp, refresh=(b"n" * 8, b"k" * 16))
        parsed = parse_inner(inner)
        assert parsed.payload == b"payload"
        assert parsed.udp.source_port == 1111
        assert parsed.refresh == (b"n" * 8, b"k" * 16)

    def test_inner_without_optional_fields(self):
        parsed = parse_inner(pack_inner(b"just data"))
        assert parsed.payload == b"just data" and parsed.udp is None and parsed.refresh is None

    def test_envelope_roundtrip(self):
        data = pack_envelope(ENVELOPE_DATA, b"ciphertext")
        assert parse_envelope(data).body == b"ciphertext"
        handshake = pack_envelope(ENVELOPE_HANDSHAKE_DATA, b"ct", prefix=b"blob")
        parsed = parse_envelope(handshake)
        assert parsed.prefix == b"blob" and parsed.body == b"ct"

    def test_malformed_envelopes_rejected(self):
        with pytest.raises(ShimError):
            parse_envelope(b"")
        with pytest.raises(ShimError):
            parse_envelope(b"\x63junk")
        with pytest.raises(ShimError):
            pack_envelope(ENVELOPE_DATA, b"x", prefix=b"not allowed")


class TestClientServerPath:
    def test_request_reply_roundtrip_and_privacy(self, deployed):
        topology, deployment, client, server, trace = deployed
        ann = topology.host("ann")
        google = topology.host("google")
        received = _echo_server(google)
        replies = []
        ann.register_port_handler(41000, lambda p, h: replies.append(p))

        ann.send(udp_packet(ann.address, google.address, b"hello", source_port=41000,
                            destination_port=5000))
        topology.run(3.0)

        assert [p.payload for p in received] == [b"hello"]
        assert [p.payload for p in replies] == [b"echo:hello"]
        # Applications see real addresses...
        assert received[0].source == ann.address
        assert replies[0].source == google.address
        # ...but the discriminatory ISP never does.
        assert not trace.ever_saw_address(google.address, "att-br")
        assert not trace.payload_contains(b"hello", "att-br")
        assert not trace.payload_contains(b"echo", "att-br")

    def test_key_refresh_retires_weak_key(self, deployed):
        topology, deployment, client, server, trace = deployed
        ann = topology.host("ann")
        google = topology.host("google")
        _echo_server(google)
        ann.register_port_handler(41000, lambda p, h: None)
        for _ in range(2):
            ann.send(udp_packet(ann.address, google.address, b"ping", source_port=41000,
                                destination_port=5000))
            topology.run(2.0)
        active = client.active_key_for(deployment.deployment.anycast_address)
        assert active is not None and active.refreshed
        assert client.counters["refreshes_adopted"] >= 1
        assert server.counters["refresh_echoes_sent"] >= 1

    def test_non_neutralized_destinations_pass_through(self, deployed):
        topology, deployment, client, server, trace = deployed
        ann = topology.host("ann")
        # A destination never registered with the client stack: plain traffic.
        carol = topology.add_host("carol", "att")
        topology.add_link("carol", "att-br", rate_bps=mbps(10), delay_seconds=msec(1))
        topology.build_routes()
        got = []
        carol.register_port_handler(6000, lambda p, h: got.append(p))
        ann.send(udp_packet(ann.address, carol.address, b"plain", destination_port=6000))
        topology.run(1.0)
        assert len(got) == 1 and got[0].payload == b"plain"
        assert client.counters["packets_passed_through"] >= 1

    def test_dscp_preserved_end_to_end(self, deployed):
        topology, deployment, client, server, trace = deployed
        ann = topology.host("ann")
        google = topology.host("google")
        received = _echo_server(google)
        ann.send(udp_packet(ann.address, google.address, b"ef", source_port=41000,
                            destination_port=5000, dscp=int(Dscp.EF)))
        topology.run(2.0)
        assert received[0].dscp == int(Dscp.EF)
        # Every neutralized packet AT&T saw still carried the EF marking.
        ef_records = [r for r in trace.at_vantage("att-br") if r.dscp == int(Dscp.EF)]
        assert ef_records

    def test_reverse_direction_initiation(self, deployed):
        topology, deployment, client, server, trace = deployed
        ann = topology.host("ann")
        google = topology.host("google")
        # Google initiates toward Ann (§3.3): it needs Ann's published key.
        assert client.host_keypair is not None
        got_at_ann = []
        ann.register_port_handler(7000, lambda p, h: got_at_ann.append(p))
        got_at_google = []
        google.register_port_handler(7001, lambda p, h: got_at_google.append(p))

        server.initiate_to(ann.address, client.host_keypair.public)
        topology.run(1.0)
        google.send(udp_packet(google.address, ann.address, b"from google",
                               source_port=7001, destination_port=7000))
        topology.run(2.0)
        assert [p.payload for p in got_at_ann] == [b"from google"]
        assert got_at_ann[0].source == google.address
        assert client.counters["reverse_hellos_accepted"] == 1
        # Ann replies; Google's address still never visible inside AT&T.
        ann.send(udp_packet(ann.address, google.address, b"back at you",
                            source_port=7000, destination_port=7001))
        topology.run(2.0)
        assert [p.payload for p in got_at_google] == [b"back at you"]
        assert not trace.ever_saw_address(google.address, "att-br")

    def test_plaintext_mode_without_e2e(self, small_topology, rng, anycast_address):
        deployment = neutralize_isp(small_topology, "cogent", anycast_address, rng=rng,
                                    use_e2e=False)
        google = small_topology.host("google")
        ann = small_topology.host("ann")
        deployment.attach_server(google)
        deployment.attach_client(ann)
        deployment.bootstrap_client("ann", "google")
        received = _echo_server(google)
        ann.send(udp_packet(ann.address, google.address, b"clear", source_port=41000,
                            destination_port=5000))
        small_topology.run(2.0)
        assert [p.payload for p in received] == [b"clear"]

    def test_client_requires_neutralizer_addresses(self, deployed):
        topology, deployment, client, server, trace = deployed
        from repro.core import DestinationInfo

        with pytest.raises(NeutralizerError):
            client.register_destination(DestinationInfo(address=ip("10.3.0.99")))

    def test_server_attach_rejects_non_customer(self, deployed):
        topology, deployment, client, server, trace = deployed
        outsider = topology.host("ann")
        with pytest.raises(NeutralizerError):
            deployment.attach_server(outsider)

    def test_bootstrap_from_zone_uses_published_records(self, deployed):
        topology, deployment, client, server, trace = deployed
        info = deployment.bootstrap_from_zone("ann", "www.google.com")
        assert info.address == topology.host("google").address
        assert deployment.deployment.anycast_address in info.neutralizer_addresses

    def test_counters_report_structure(self, deployed):
        topology, deployment, client, server, trace = deployed
        report = deployment.counters()
        assert "neutralizers" in report and "client:ann" in report and "server:google" in report


class TestOffload:
    def test_offloaded_key_setup_end_to_end(self, deployed):
        topology, deployment, client, server, trace = deployed
        ann = topology.host("ann")
        google = topology.host("google")
        helper = deployment.attach_offload_helper(google)
        received = _echo_server(google)
        ann.send(udp_packet(ann.address, google.address, b"offloaded", source_port=41000,
                            destination_port=5000))
        topology.run(3.0)
        assert [p.payload for p in received] == [b"offloaded"]
        assert helper.counters["rsa_encryptions"] == 1
        assert deployment.counters()["neutralizers"]["rsa_encryptions"] == 0
        assert deployment.counters()["neutralizers"]["offloaded_requests"] == 1

    def test_helper_must_be_a_customer(self, deployed):
        topology, deployment, client, server, trace = deployed
        from repro.core import register_helper
        from repro.exceptions import OffloadError

        with pytest.raises(OffloadError):
            register_helper(deployment.deployment.domain, topology.host("ann"))


class TestSelectors:
    def test_first_choice(self):
        selector = FirstChoiceSelector()
        assert selector.select([ip("10.200.0.1"), ip("10.200.0.2")]) == ip("10.200.0.1")

    def test_round_robin_cycles(self):
        selector = RoundRobinSelector()
        candidates = [ip("10.200.0.1"), ip("10.200.0.2")]
        picks = [selector.select(candidates) for _ in range(4)]
        assert picks == [candidates[0], candidates[1], candidates[0], candidates[1]]

    def test_weighted_respects_weights(self, rng):
        a, b = ip("10.200.0.1"), ip("10.200.0.2")
        selector = WeightedSelector({a: 9.0, b: 1.0}, rng=rng)
        picks = [selector.select([a, b]) for _ in range(300)]
        assert picks.count(a) > picks.count(b) * 3

    def test_adaptive_prefers_lower_rtt_and_reacts_to_failures(self):
        a, b = ip("10.200.0.1"), ip("10.200.0.2")
        selector = AdaptiveSelector()
        selector.record_outcome(a, rtt=0.050)
        selector.record_outcome(b, rtt=0.010)
        assert selector.select([a, b]) == b
        for _ in range(3):
            selector.record_outcome(b, failed=True)
        assert selector.select([a, b]) == a

    def test_empty_candidate_list_rejected(self):
        with pytest.raises(NeutralizerError):
            FirstChoiceSelector().select([])

    def test_multihomed_site_publication(self):
        site = MultihomedSite(name="google", address=ip("10.3.0.2"))
        site.add_provider(ip("10.200.0.1"))
        assert not site.is_multihomed
        site.add_provider(ip("10.200.0.2"))
        site.add_provider(ip("10.200.0.2"))
        assert site.is_multihomed and len(site.neutralizer_addresses) == 2
