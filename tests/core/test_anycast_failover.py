"""Anycast deployment failover and the consistent-hash ring."""

import pytest

from repro.analysis.scenarios import build_figure1
from repro.core.anycast import ConsistentHashRing
from repro.exceptions import TopologyError
from repro.packet import ip, udp_packet


class TestAnycastFailover:
    def build(self):
        scenario = build_figure1(neutralized=True, seed=99)
        deployment = scenario.deployment.deployment
        return scenario, deployment

    def test_each_border_router_hosts_a_box(self):
        _, deployment = self.build()
        assert sorted(deployment.router_names) == ["cogent-br-east", "cogent-br-west"]
        assert len(deployment.neutralizers) == 2
        assert "2 boxes" in deployment.describe()

    def test_traffic_enters_at_nearest_border(self):
        scenario, deployment = self.build()
        topology = scenario.topology
        ann = topology.host("ann")
        google = topology.host("google")
        received = []
        google.register_port_handler(8080, lambda p, h: received.append(p))
        ann.send(udp_packet(ann.address, google.address, b"x" * 50,
                            destination_port=8080))
        topology.run(2.0)
        assert received
        east, west = deployment.neutralizers
        by_name = {n.name: n.counters["data_packets_forwarded"]
                   for n in (east, west)}
        # Ann sits in AT&T, whose peering lands on Cogent's east border.
        assert by_name["neutralizer@cogent-br-east"] > 0
        assert by_name["neutralizer@cogent-br-west"] == 0

    def test_failover_reroutes_to_surviving_member_under_load(self):
        # Withdraw the nearest member mid-run (site removal under load): the
        # rebuilt anycast routes must deliver follow-up traffic via the
        # surviving box, invisibly to the application.
        scenario, deployment = self.build()
        topology = scenario.topology
        ann = topology.host("ann")
        google = topology.host("google")
        received = []
        google.register_port_handler(8080, lambda p, h: received.append(p))

        ann.send(udp_packet(ann.address, google.address, b"before",
                            destination_port=8080))
        topology.run(1.0)
        assert len(received) == 1

        group = topology.anycast_groups[deployment.anycast_address]
        group.remove_member("cogent-br-east")
        topology.build_routes()

        ann.send(udp_packet(ann.address, google.address, b"after",
                            destination_port=8080))
        topology.run(2.0)
        assert len(received) == 2
        west = next(n for n in deployment.neutralizers
                    if n.name == "neutralizer@cogent-br-west")
        assert west.counters["data_packets_forwarded"] > 0


class TestConsistentHashRing:
    def test_deterministic_and_stable(self):
        one = ConsistentHashRing(["a", "b", "c"])
        two = ConsistentHashRing(["c", "a", "b"])
        keys = [f"client-{i}" for i in range(200)]
        assert [one.site_for(k) for k in keys] == [two.site_for(k) for k in keys]

    def test_covers_all_sites_roughly_evenly(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], replicas=128)
        counts = {name: 0 for name in "abcd"}
        for i in range(4_000):
            counts[ring.site_for(f"key{i}")] += 1
        assert min(counts.values()) > 0.4 * 1_000
        assert max(counts.values()) < 2.0 * 1_000

    def test_removal_moves_only_the_removed_sites_keys(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        keys = [f"key{i}" for i in range(500)]
        before = {k: ring.site_for(k) for k in keys}
        ring.remove_site("b")
        after = {k: ring.site_for(k) for k in keys}
        for key in keys:
            if before[key] != "b":
                assert after[key] == before[key]
            else:
                assert after[key] != "b"

    def test_add_is_idempotent_and_readdition_restores(self):
        ring = ConsistentHashRing(["a", "b"])
        size = len(ring)
        ring.add_site("a")
        assert len(ring) == size
        keys = [f"key{i}" for i in range(300)]
        before = {k: ring.site_for(k) for k in keys}
        ring.remove_site("a")
        ring.add_site("a")
        assert {k: ring.site_for(k) for k in keys} == before

    def test_empty_ring_rejects_lookup(self):
        ring = ConsistentHashRing()
        with pytest.raises(TopologyError):
            ring.site_for("anything")
        with pytest.raises(TopologyError):
            ConsistentHashRing(replicas=0)

    def test_table_is_sorted_for_vectorized_lookup(self):
        ring = ConsistentHashRing(["x", "y", "z"])
        positions, owners = ring.table()
        assert positions == sorted(positions)
        assert len(positions) == len(owners) == 3 * ring.replicas
        assert set(owners) == {"x", "y", "z"}


class TestRingSnapshot:
    def test_snapshot_is_frozen_against_later_changes(self):
        ring = ConsistentHashRing(["a", "b"])
        snapshot = ring.snapshot()
        ring.remove_site("b")
        assert snapshot.site_names == ("a", "b")
        assert ring.snapshot().site_names == ("a",)

    def test_owned_fractions_partition_the_space(self):
        ring = ConsistentHashRing(["a", "b", "c"], replicas=64)
        snapshot = ring.snapshot()
        total = sum(snapshot.owned_fraction(name) for name in "abc")
        assert total == pytest.approx(1.0)
        for name in "abc":
            assert 0.1 < snapshot.owned_fraction(name) < 0.6

    def test_removal_diff_equals_owned_fraction(self):
        # Consistent hashing's contract, stated on snapshots: removing one
        # site moves exactly the key space that site owned, nothing else.
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        before = ring.snapshot()
        owned = before.owned_fraction("c")
        ring.remove_site("c")
        diff = before.diff(ring.snapshot())
        assert diff.moved_fraction == pytest.approx(owned)
        assert diff.sites_removed == ("c",)
        assert diff.sites_added == ()
        assert diff.changed

    def test_readdition_diff_restores_and_identity_diff_is_empty(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = ring.snapshot()
        ring.remove_site("a")
        ring.add_site("a")
        restored = ring.snapshot()
        assert restored == before
        assert not before.diff(restored).changed

    def test_owner_at_matches_ring_lookup(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        snapshot = ring.snapshot()
        for i in range(100):
            position = ring.key_position(f"key{i}")
            assert snapshot.owner_at(position) == ring.site_for(f"key{i}")

    def test_empty_snapshot_rejected(self):
        empty = ConsistentHashRing().snapshot()
        with pytest.raises(TopologyError):
            empty.owner_at(0)
        with pytest.raises(TopologyError):
            empty.diff(empty)
