"""Neutralizer packet-processing tests (the stateless box in isolation)."""

import pytest

from repro.core import (
    KeySetupRequestBody,
    KeySetupResponseBody,
    NeutralizedDataBody,
    NeutralizerConfig,
    NeutralizerDomain,
    ReturnDataBody,
    ReverseKeyRequestBody,
    decrypt_address,
    encrypt_address,
)
from repro.core.shim import FLAG_KEY_REQUEST, NONCE_LEN, TAG_LEN
from repro.crypto import DeterministicRandom, derive_symmetric_key, generate_keypair
from repro.crypto.kdf import integrity_tag
from repro.packet import Dscp, IPv4Header, Packet, Prefix, ip
from repro.packet.headers import (
    PROTO_NEUTRALIZER_SHIM,
    SHIM_TYPE_KEY_SETUP_RESPONSE,
    SHIM_TYPE_NEUTRALIZED_DATA,
    SHIM_TYPE_RETURN_DATA,
)


@pytest.fixture
def domain(rng):
    config = NeutralizerConfig(
        anycast_address=ip("10.200.0.1"),
        served_prefix=Prefix.parse("10.3.0.0/16"),
    )
    return NeutralizerDomain(config, rng=rng)


@pytest.fixture
def box(domain):
    return domain.create_neutralizer("n1")


def _shim_packet(source, destination, shim, payload=b"", dscp=0):
    return Packet(
        ip=IPv4Header(source=source, destination=destination,
                      protocol=PROTO_NEUTRALIZER_SHIM, dscp=dscp),
        shim=shim,
        payload=payload,
    )


def _established_key(domain, source):
    epoch = domain.master_keys.current_epoch
    nonce = domain.rng.nonce(NONCE_LEN)
    key = domain.master_keys.derive_key(nonce, source, epoch)
    return epoch, nonce, key


def _data_packet(domain, source, destination, *, flags=0, payload=b"p" * 64, dscp=0,
                 key_override=None, nonce_override=None):
    epoch, nonce, key = _established_key(domain, source)
    if key_override is not None:
        key = key_override
    if nonce_override is not None:
        nonce = nonce_override
    enc = encrypt_address(key, nonce, destination)
    provisional = NeutralizedDataBody(epoch=epoch, nonce=nonce, encrypted_destination=enc,
                                      tag=b"\x00" * TAG_LEN, flags=flags)
    body = NeutralizedDataBody(epoch=epoch, nonce=nonce, encrypted_destination=enc,
                               tag=integrity_tag(key, provisional.tag_input(), TAG_LEN),
                               flags=flags)
    return _shim_packet(source, domain.anycast_address, body.to_shim(), payload, dscp), key, nonce


class TestKeySetupProcessing:
    def test_response_decryptable_with_one_time_key(self, domain, box, rng):
        keypair = generate_keypair(512, rng)
        request = _shim_packet(ip("10.1.0.5"), domain.anycast_address,
                               KeySetupRequestBody(public_key=keypair.public).to_shim())
        outputs = box.process(request)
        assert len(outputs) == 1
        response = outputs[0]
        assert response.destination == ip("10.1.0.5")
        assert response.source == domain.anycast_address
        body = KeySetupResponseBody.unpack(response.shim.body)
        plaintext = keypair.private.decrypt(body.ciphertext)
        nonce, key = plaintext[:8], plaintext[8:]
        # The returned key must equal the stateless derivation.
        assert key == domain.master_keys.derive_key(nonce, ip("10.1.0.5"), body.epoch)
        assert box.counters["rsa_encryptions"] == 1

    def test_dscp_preserved_on_response(self, domain, box, rng):
        keypair = generate_keypair(512, rng)
        request = _shim_packet(ip("10.1.0.5"), domain.anycast_address,
                               KeySetupRequestBody(public_key=keypair.public).to_shim(),
                               dscp=int(Dscp.AF21))
        assert box.process(request)[0].dscp == int(Dscp.AF21)

    def test_offload_forwarding(self, domain, box, rng):
        domain.config.offload_enabled = True
        domain.register_offload_helper(ip("10.3.0.9"))
        keypair = generate_keypair(512, rng)
        request = _shim_packet(ip("10.1.0.5"), domain.anycast_address,
                               KeySetupRequestBody(public_key=keypair.public).to_shim())
        outputs = box.process(request)
        assert outputs[0].destination == ip("10.3.0.9")
        body = KeySetupRequestBody.unpack(outputs[0].shim.body)
        assert body.offload_nonce is not None and body.offload_key is not None
        assert box.counters["rsa_encryptions"] == 0
        assert box.counters["offloaded_requests"] == 1


class TestForwardDataProcessing:
    def test_destination_decrypted_and_rewritten(self, domain, box):
        packet, _key, _nonce = _data_packet(domain, ip("10.1.0.5"), ip("10.3.0.7"))
        outputs = box.process(packet)
        assert len(outputs) == 1
        forwarded = outputs[0]
        assert forwarded.destination == ip("10.3.0.7")
        assert forwarded.source == ip("10.1.0.5")
        assert forwarded.payload == b"p" * 64

    def test_dscp_passthrough_invariant(self, domain, box):
        packet, _k, _n = _data_packet(domain, ip("10.1.0.5"), ip("10.3.0.7"),
                                      dscp=int(Dscp.EF))
        assert box.process(packet)[0].dscp == int(Dscp.EF)

    def test_key_request_gets_refresh_stamped(self, domain, box):
        packet, _k, _n = _data_packet(domain, ip("10.1.0.5"), ip("10.3.0.7"),
                                      flags=FLAG_KEY_REQUEST)
        forwarded = box.process(packet)[0]
        body = NeutralizedDataBody.unpack(forwarded.shim.body)
        assert body.has_refresh
        # The stamped key must itself be statelessly derivable.
        assert body.refresh_key == domain.master_keys.derive_key(
            body.refresh_nonce, ip("10.1.0.5"), domain.master_keys.current_epoch)

    def test_bad_tag_dropped(self, domain, box):
        packet, key, nonce = _data_packet(domain, ip("10.1.0.5"), ip("10.3.0.7"))
        tampered_body = NeutralizedDataBody.unpack(packet.shim.body)
        corrupted = NeutralizedDataBody(
            epoch=tampered_body.epoch, nonce=tampered_body.nonce,
            encrypted_destination=tampered_body.encrypted_destination,
            tag=b"\xff" * TAG_LEN)
        bad = _shim_packet(ip("10.1.0.5"), domain.anycast_address, corrupted.to_shim())
        assert box.process(bad) == []
        assert box.counters["tag_failures"] == 1

    def test_wrong_source_cannot_reuse_someone_elses_nonce(self, domain, box):
        # Ks is bound to the source address: a different source presenting the
        # same shim decrypts to garbage and is dropped (tag mismatch).
        packet, _k, _n = _data_packet(domain, ip("10.1.0.5"), ip("10.3.0.7"))
        stolen = packet.copy()
        stolen.ip = stolen.ip.with_addresses(source=ip("10.1.0.99"))
        assert box.process(stolen) == []

    def test_non_customer_destination_dropped(self, domain, box):
        packet, _k, _n = _data_packet(domain, ip("10.1.0.5"), ip("10.8.0.7"))
        assert box.process(packet) == []

    def test_expired_epoch_dropped(self, domain, box):
        packet, _k, _n = _data_packet(domain, ip("10.1.0.5"), ip("10.3.0.7"))
        domain.master_keys.rotate()
        domain.master_keys.rotate()  # beyond the retention window
        assert box.process(packet) == []
        assert box.counters["unknown_epoch"] == 1

    def test_statelessness_any_box_can_process(self, domain):
        box_a = domain.create_neutralizer("a")
        box_b = domain.create_neutralizer("b")
        packet, _k, _n = _data_packet(domain, ip("10.1.0.5"), ip("10.3.0.7"))
        assert box_a.process(packet)[0].destination == ip("10.3.0.7")
        assert box_b.process(packet.copy())[0].destination == ip("10.3.0.7")
        assert box_a.state_entries() == 0 and box_b.state_entries() == 0


class TestReturnProcessing:
    def test_customer_address_hidden_and_recoverable(self, domain, box):
        initiator = ip("10.1.0.5")
        customer = ip("10.3.0.7")
        epoch, nonce, key = _established_key(domain, initiator)
        body = ReturnDataBody(epoch=epoch, nonce=nonce, address_field=initiator.packed)
        packet = _shim_packet(customer, domain.anycast_address, body.to_shim(), b"reply")
        outputs = box.process(packet)
        assert len(outputs) == 1
        outbound = outputs[0]
        assert outbound.destination == initiator
        assert outbound.source == domain.anycast_address
        out_body = ReturnDataBody.unpack(outbound.shim.body)
        # The customer's address must not appear in clear anywhere.
        assert out_body.address_field != customer.packed
        assert decrypt_address(key, nonce, out_body.address_field,
                               return_direction=True) == customer

    def test_return_from_non_customer_dropped(self, domain, box):
        body = ReturnDataBody(epoch=1, nonce=b"n" * 8, address_field=ip("10.1.0.5").packed)
        packet = _shim_packet(ip("10.8.0.9"), domain.anycast_address, body.to_shim())
        assert box.process(packet) == []


class TestReverseKeyRequest:
    def test_plaintext_key_issued_to_customer(self, domain, box):
        request = ReverseKeyRequestBody(peer_address=ip("10.1.0.5"))
        packet = _shim_packet(ip("10.3.0.7"), domain.anycast_address, request.to_shim())
        response = box.process(packet)[0]
        assert response.destination == ip("10.3.0.7")
        body = KeySetupResponseBody.unpack(response.shim.body)
        assert body.is_plaintext
        # Bound to the *peer's* address for later stateless processing.
        assert body.plaintext_key == domain.master_keys.derive_key(
            body.plaintext_nonce, ip("10.1.0.5"), body.epoch)

    def test_reverse_request_from_outside_dropped(self, domain, box):
        request = ReverseKeyRequestBody(peer_address=ip("10.1.0.5"))
        packet = _shim_packet(ip("10.1.0.6"), domain.anycast_address, request.to_shim())
        assert box.process(packet) == []


class TestMisc:
    def test_non_shim_packet_ignored(self, domain, box):
        from repro.packet import udp_packet

        assert box.process(udp_packet(ip("10.1.0.1"), ip("10.200.0.1"), b"x")) == []
        assert box.counters["not_for_us"] == 1

    def test_address_encryption_direction_tweak(self):
        key, nonce = b"k" * 16, b"n" * 8
        forward = encrypt_address(key, nonce, ip("10.3.0.7"))
        backward = encrypt_address(key, nonce, ip("10.3.0.7"), return_direction=True)
        assert forward != backward
        assert decrypt_address(key, nonce, forward) == ip("10.3.0.7")
        assert decrypt_address(key, nonce, backward, return_direction=True) == ip("10.3.0.7")

    def test_domain_counter_aggregation(self, domain, rng):
        box_a = domain.create_neutralizer("a")
        keypair = generate_keypair(512, rng)
        request = _shim_packet(ip("10.1.0.5"), domain.anycast_address,
                               KeySetupRequestBody(public_key=keypair.public).to_shim())
        box_a.process(request)
        totals = domain.total_counters()
        assert totals["key_setup_requests"] == 1
