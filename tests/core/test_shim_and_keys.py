"""Core wire formats, master keys, and the source-side key-setup state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KeySetupContext,
    KeySetupRequestBody,
    KeySetupResponseBody,
    KeySetupState,
    MasterKeyManager,
    NeutralizedDataBody,
    ReturnDataBody,
    ReverseKeyRequestBody,
    attacker_window_seconds,
    expected_data_overhead_bytes,
    parse_shim_body,
)
from repro.core.shim import FLAG_KEY_REQUEST, FLAG_REFRESH_PRESENT, TAG_LEN
from repro.crypto import generate_keypair
from repro.exceptions import KeySetupError, MasterKeyExpiredError, ShimError
from repro.packet import ip


class TestShimBodies:
    def test_key_setup_request_roundtrip(self, rng):
        keypair = generate_keypair(512, rng)
        body = KeySetupRequestBody(public_key=keypair.public)
        parsed = KeySetupRequestBody.unpack(body.pack())
        assert parsed.public_key == keypair.public
        assert parsed.offload_nonce is None

    def test_key_setup_request_with_offload_fields(self, rng):
        keypair = generate_keypair(512, rng)
        body = KeySetupRequestBody(public_key=keypair.public, epoch_hint=3,
                                   offload_nonce=b"n" * 8, offload_key=b"k" * 16)
        parsed = KeySetupRequestBody.unpack(body.pack())
        assert parsed.offload_nonce == b"n" * 8 and parsed.offload_key == b"k" * 16
        assert parsed.epoch_hint == 3

    def test_key_setup_response_encrypted_roundtrip(self):
        body = KeySetupResponseBody(epoch=2, ciphertext=b"c" * 64)
        parsed = KeySetupResponseBody.unpack(body.pack())
        assert parsed.ciphertext == b"c" * 64 and not parsed.is_plaintext

    def test_key_setup_response_plaintext_roundtrip(self):
        body = KeySetupResponseBody(epoch=2, plaintext_nonce=b"n" * 8, plaintext_key=b"k" * 16)
        parsed = KeySetupResponseBody.unpack(body.pack())
        assert parsed.is_plaintext and parsed.plaintext_key == b"k" * 16

    def test_neutralized_data_roundtrip_and_refresh(self):
        body = NeutralizedDataBody(epoch=1, nonce=b"n" * 8, encrypted_destination=b"e" * 4,
                                   tag=b"t" * TAG_LEN, flags=FLAG_KEY_REQUEST)
        parsed = NeutralizedDataBody.unpack(body.pack())
        assert parsed.wants_key_refresh and not parsed.has_refresh
        stamped = parsed.with_refresh(b"m" * 8, b"K" * 16)
        reparsed = NeutralizedDataBody.unpack(stamped.pack())
        assert reparsed.has_refresh and reparsed.refresh_key == b"K" * 16

    def test_refresh_block_not_included_when_absent(self):
        body = NeutralizedDataBody(epoch=1, nonce=b"n" * 8, encrypted_destination=b"e" * 4,
                                   tag=b"t" * TAG_LEN)
        assert len(body.pack()) == expected_data_overhead_bytes() - 4

    def test_return_data_roundtrip(self):
        body = ReturnDataBody(epoch=1, nonce=b"n" * 8, address_field=ip("10.1.0.1").packed)
        parsed = ReturnDataBody.unpack(body.pack())
        assert parsed.clear_address() == ip("10.1.0.1")

    def test_reverse_key_request_roundtrip(self):
        body = ReverseKeyRequestBody(peer_address=ip("10.1.0.7"), epoch_hint=1)
        parsed = ReverseKeyRequestBody.unpack(body.pack())
        assert parsed.peer_address == ip("10.1.0.7")

    def test_parse_shim_body_dispatch(self, rng):
        keypair = generate_keypair(512, rng)
        shim = KeySetupRequestBody(public_key=keypair.public).to_shim()
        assert isinstance(parse_shim_body(shim), KeySetupRequestBody)

    def test_malformed_bodies_rejected(self):
        with pytest.raises(ShimError):
            NeutralizedDataBody.unpack(b"\x00\x01")
        with pytest.raises(ShimError):
            ReturnDataBody.unpack(b"")
        with pytest.raises(ShimError):
            NeutralizedDataBody(epoch=1, nonce=b"short", encrypted_destination=b"e" * 4,
                                tag=b"t" * TAG_LEN)

    @given(st.integers(min_value=0, max_value=65535), st.binary(min_size=8, max_size=8),
           st.binary(min_size=4, max_size=4), st.binary(min_size=TAG_LEN, max_size=TAG_LEN))
    @settings(max_examples=30, deadline=None)
    def test_neutralized_data_roundtrip_property(self, epoch, nonce, enc_dst, tag):
        body = NeutralizedDataBody(epoch=epoch, nonce=nonce, encrypted_destination=enc_dst,
                                   tag=tag)
        parsed = NeutralizedDataBody.unpack(body.pack())
        assert parsed.nonce == nonce and parsed.encrypted_destination == enc_dst
        assert parsed.epoch == epoch and parsed.tag == tag


class TestMasterKeys:
    def test_same_inputs_same_key(self, rng):
        manager = MasterKeyManager(rng)
        a = manager.derive_key(b"n" * 8, ip("10.1.0.1"))
        b = manager.derive_key(b"n" * 8, ip("10.1.0.1"))
        assert a == b and len(a) == 16

    def test_rotation_changes_keys_but_keeps_grace_epoch(self, rng):
        manager = MasterKeyManager(rng, retained_epochs=1)
        old_epoch = manager.current_epoch
        old_key = manager.derive_key(b"n" * 8, ip("10.1.0.1"), old_epoch)
        manager.rotate()
        assert manager.current_epoch == old_epoch + 1
        # Previous epoch still derivable during the grace window.
        assert manager.derive_key(b"n" * 8, ip("10.1.0.1"), old_epoch) == old_key
        manager.rotate()
        with pytest.raises(MasterKeyExpiredError):
            manager.key_for_epoch(old_epoch)

    def test_shared_manager_means_any_box_can_decrypt(self, rng):
        # The anycast fault-tolerance argument: two neutralizers sharing the
        # manager derive identical keys.
        manager = MasterKeyManager(rng)
        assert manager.derive_key(b"n" * 8, ip("10.1.0.1")) == manager.derive_key(
            b"n" * 8, ip("10.1.0.1"))

    def test_key_setups_per_source_per_day(self, rng):
        manager = MasterKeyManager(rng, lifetime_seconds=3600.0)
        assert manager.key_setups_per_source_per_day() == pytest.approx(24.0)

    def test_scheduled_rotation(self, rng):
        from repro.netsim import Simulator

        sim = Simulator()
        manager = MasterKeyManager(rng, lifetime_seconds=10.0)
        manager.schedule_rotation(sim)
        first = manager.current_epoch
        sim.run(until=35.0)
        assert manager.current_epoch == first + 3


class TestKeySetupContext:
    def test_full_state_machine(self, rng):
        context = KeySetupContext(neutralizer_address=ip("10.200.0.1"),
                                  source_address=ip("10.1.0.1"))
        assert context.state == KeySetupState.IDLE
        request = context.build_request(rng)
        assert context.state == KeySetupState.PENDING
        # Simulate the neutralizer: encrypt (nonce || Ks) under the one-time key.
        ciphertext = request.public_key.encrypt(b"N" * 8 + b"K" * 16, rng)
        active = context.process_response(KeySetupResponseBody(epoch=1, ciphertext=ciphertext))
        assert context.is_established and active.key == b"K" * 16
        assert context.needs_refresh
        context.apply_refresh(b"M" * 8, b"L" * 16)
        assert not context.needs_refresh and context.active.refreshed

    def test_response_without_request_rejected(self):
        context = KeySetupContext(neutralizer_address=ip("10.200.0.1"),
                                  source_address=ip("10.1.0.1"))
        with pytest.raises(KeySetupError):
            context.process_response(KeySetupResponseBody(epoch=1, ciphertext=b"c" * 64))

    def test_refresh_before_establishment_rejected(self):
        context = KeySetupContext(neutralizer_address=ip("10.200.0.1"),
                                  source_address=ip("10.1.0.1"))
        with pytest.raises(KeySetupError):
            context.apply_refresh(b"M" * 8, b"L" * 16)

    def test_queue_and_drain(self, rng):
        context = KeySetupContext(neutralizer_address=ip("10.200.0.1"),
                                  source_address=ip("10.1.0.1"))
        context.queue_packet(object())
        context.queue_packet(object())
        assert len(context.drain_pending()) == 2 and context.pending_packets == []

    def test_one_time_key_discarded_after_use(self, rng):
        context = KeySetupContext(neutralizer_address=ip("10.200.0.1"),
                                  source_address=ip("10.1.0.1"))
        request = context.build_request(rng)
        ciphertext = request.public_key.encrypt(b"N" * 8 + b"K" * 16, rng)
        context.process_response(KeySetupResponseBody(epoch=1, ciphertext=ciphertext))
        assert context.one_time_keypair is None

    def test_attacker_window_is_two_rtts(self):
        assert attacker_window_seconds(0.05) == pytest.approx(0.1)
