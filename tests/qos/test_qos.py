"""QoS substrate tests: schedulers, token buckets, DiffServ, IntServ."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReservationError
from repro.packet import Dscp, ip, udp_packet
from repro.qos import (
    DeficitRoundRobinScheduler,
    DiffServDomain,
    DynamicAddressPool,
    FifoScheduler,
    FlowSpec,
    PriorityScheduler,
    ReservationTable,
    ServiceLevelAgreement,
    TokenBucket,
    TokenBucketScheduler,
    expected_priority_order,
    phb_of,
    PerHopBehaviour,
)


def _packet(dscp=0, size=100):
    return udp_packet(ip("10.1.0.1"), ip("10.3.0.1"), b"x" * size, dscp=dscp)


class TestFifoScheduler:
    def test_fifo_order(self):
        fifo = FifoScheduler(capacity=10)
        packets = [_packet() for _ in range(3)]
        for p in packets:
            assert fifo.enqueue(p)
        assert [fifo.dequeue() for _ in range(3)] == packets

    def test_capacity_enforced_and_drops_counted(self):
        fifo = FifoScheduler(capacity=2)
        assert fifo.enqueue(_packet()) and fifo.enqueue(_packet())
        assert not fifo.enqueue(_packet())
        assert fifo.drops == 1 and len(fifo) == 2

    def test_empty_dequeue_returns_none(self):
        assert FifoScheduler().dequeue() is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FifoScheduler(capacity=0)


class TestPriorityScheduler:
    def test_higher_dscp_served_first(self):
        scheduler = PriorityScheduler()
        low = _packet(dscp=int(Dscp.BEST_EFFORT))
        high = _packet(dscp=int(Dscp.EF))
        scheduler.enqueue(low)
        scheduler.enqueue(high)
        assert scheduler.dequeue() is high
        assert scheduler.dequeue() is low

    def test_per_class_capacity(self):
        scheduler = PriorityScheduler(capacity_per_class=1)
        assert scheduler.enqueue(_packet(dscp=0))
        assert not scheduler.enqueue(_packet(dscp=0))
        assert scheduler.enqueue(_packet(dscp=int(Dscp.EF)))

    @given(st.lists(st.sampled_from([0, 8, 18, 34, 46]), min_size=1, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_dequeue_order_is_non_increasing_priority(self, dscps):
        scheduler = PriorityScheduler()
        for dscp in dscps:
            scheduler.enqueue(_packet(dscp=dscp))
        out = []
        while True:
            packet = scheduler.dequeue()
            if packet is None:
                break
            out.append(packet.dscp)
        assert expected_priority_order(out)
        assert len(out) == len(dscps)


class TestDrrScheduler:
    def test_work_conserving(self):
        drr = DeficitRoundRobinScheduler()
        for dscp in (0, 46, 0, 46):
            drr.enqueue(_packet(dscp=dscp, size=500))
        seen = 0
        while drr.dequeue() is not None:
            seen += 1
        assert seen == 4

    def test_weighted_share(self):
        # EF weighted 4x against best effort; over many dequeues EF should
        # receive roughly 4x the bytes while both queues stay backlogged.
        from repro.packet.dscp import priority_of

        drr = DeficitRoundRobinScheduler(weights={priority_of(int(Dscp.EF)): 4.0,
                                                  priority_of(0): 1.0},
                                         quantum_bytes=600)
        for _ in range(100):
            drr.enqueue(_packet(dscp=int(Dscp.EF), size=500))
            drr.enqueue(_packet(dscp=0, size=500))
        counts = {int(Dscp.EF): 0, 0: 0}
        for _ in range(50):
            packet = drr.dequeue()
            counts[packet.dscp] += 1
        assert counts[int(Dscp.EF)] > counts[0]


class TestTokenBucket:
    def test_allows_within_rate(self):
        bucket = TokenBucket(rate_bytes_per_second=1000, burst_bytes=1000)
        assert bucket.allow(500, now=0.0)
        assert bucket.allow(500, now=0.0)
        assert not bucket.allow(500, now=0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate_bytes_per_second=1000, burst_bytes=1000)
        assert bucket.allow(1000, now=0.0)
        assert not bucket.allow(1000, now=0.1)
        assert bucket.allow(1000, now=1.5)

    def test_scheduler_wrapper_drops_nonconforming(self):
        scheduler = TokenBucketScheduler(rate_bytes_per_second=200, burst_bytes=200)
        scheduler.set_clock(lambda: 0.0)
        assert scheduler.enqueue(_packet(size=100))
        assert not scheduler.enqueue(_packet(size=1000))
        assert scheduler.drops == 1


class TestDiffServ:
    def test_phb_classification(self):
        assert phb_of(int(Dscp.EF)) == PerHopBehaviour.EXPEDITED_FORWARDING
        assert phb_of(int(Dscp.AF21)) == PerHopBehaviour.ASSURED_FORWARDING
        assert phb_of(0) == PerHopBehaviour.DEFAULT

    def test_remarking_follows_sla(self):
        domain = DiffServDomain("att")
        domain.add_sla(ServiceLevelAgreement(customer="ann", dscp=int(Dscp.EF), rate_bps=1e6))
        marked = domain.remark(_packet(dscp=0), "ann")
        assert marked.dscp == int(Dscp.EF)
        unmarked = domain.remark(_packet(dscp=int(Dscp.EF)), "stranger")
        assert unmarked.dscp == int(Dscp.BEST_EFFORT)

    def test_scheduler_factory(self):
        assert isinstance(DiffServDomain.build_scheduler("fifo"), FifoScheduler)
        assert isinstance(DiffServDomain.build_scheduler("priority"), PriorityScheduler)
        with pytest.raises(ValueError):
            DiffServDomain.build_scheduler("wfq2")


class TestIntServ:
    def test_admission_control(self):
        table = ReservationTable(capacity_bps=1_000_000)
        spec = FlowSpec(ip("10.1.0.1"), ip("10.3.0.1"), rate_bps=600_000)
        table.admit(spec)
        with pytest.raises(ReservationError):
            table.admit(FlowSpec(ip("10.1.0.2"), ip("10.3.0.1"), rate_bps=600_000))
        table.release(spec)
        table.admit(FlowSpec(ip("10.1.0.2"), ip("10.3.0.1"), rate_bps=600_000))

    def test_lookup_fails_for_anonymized_source(self):
        # The §3.4 problem: per-flow state keyed on (src, dst) cannot match
        # once the source is the neutralizer's anycast address.
        table = ReservationTable(capacity_bps=1_000_000)
        table.admit(FlowSpec(ip("10.1.0.1"), ip("10.3.0.1"), rate_bps=100_000))
        original = udp_packet(ip("10.1.0.1"), ip("10.3.0.1"), b"x")
        anonymized = udp_packet(ip("10.200.0.1"), ip("10.3.0.1"), b"x")
        assert table.lookup(original) is not None
        assert table.lookup(anonymized) is None

    def test_duplicate_reservation_rejected(self):
        table = ReservationTable(capacity_bps=1_000_000)
        spec = FlowSpec(ip("10.1.0.1"), ip("10.3.0.1"), rate_bps=100_000)
        table.admit(spec)
        with pytest.raises(ReservationError):
            table.admit(spec)

    def test_dynamic_address_pool(self):
        pool = DynamicAddressPool([ip("10.3.255.1"), ip("10.3.255.2")])
        customer = ip("10.3.0.9")
        dynamic = pool.assign(customer)
        assert pool.assign(customer) == dynamic  # idempotent
        assert pool.owner_of(dynamic) == customer
        other = pool.assign(ip("10.3.0.10"))
        assert other != dynamic
        with pytest.raises(ReservationError):
            pool.assign(ip("10.3.0.11"))
        pool.release(dynamic)
        assert pool.owner_of(dynamic) is None
