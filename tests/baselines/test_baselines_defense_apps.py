"""Baselines, DoS defenses, application models, extensions, and analysis helpers."""

import pytest

from repro.analysis.metrics import FlowTracker, compare, measure_throughput
from repro.analysis.report import ExperimentReport, format_series, format_table
from repro.apps.voip import VoipCall, VoipQualityReport, VoipReceiver
from repro.apps.web import WebClient, WebServer
from repro.apps.video import VideoReceiver, VideoStream
from repro.apps.workloads import ConstantRateSource, KeySetupFlood, PoissonSource
from repro.baselines import (
    AccessProvider,
    OnionClient,
    OnionRelay,
    PayEveryIspModel,
    VanillaForwarder,
    compare_resources,
)
from repro.defense.pushback import AggregateDetector, PushbackController, deploy_pushback
from repro.defense.ratelimit import GlobalRateLimiter, PerSourceSketchLimiter
from repro.extensions import (
    SizeClassifier,
    TrafficMasker,
    TradeoffPoint,
    minimum_safe_key_bits,
    pad_to_bucket,
    sweep,
    unpad,
)
from repro.packet import ip, udp_packet


class TestVanillaForwarder:
    def test_forwarding_decrements_ttl_only(self):
        forwarder = VanillaForwarder()
        packet = udp_packet(ip("10.1.0.1"), ip("10.3.0.1"), b"x" * 64, ttl=64)
        out = forwarder.process(packet)[0]
        assert out.ip.ttl == 63 and out.payload == packet.payload
        assert forwarder.counters["packets_forwarded"] == 1
        assert forwarder.state_entries() == 0


class TestOnionBaseline:
    def test_cell_roundtrip_through_three_relays(self, rng):
        relays = [OnionRelay(f"r{i}", key_bits=512, rng=rng) for i in range(3)]
        client = OnionClient(rng=rng)
        circuit = client.build_circuit(relays)
        assert client.send_through(circuit, b"payload cell") == b"payload cell"
        assert client.receive_through(circuit, b"return cell") == b"return cell"

    def test_per_circuit_state_and_pk_costs(self, rng):
        relays = [OnionRelay(f"r{i}", key_bits=512, rng=rng) for i in range(3)]
        client = OnionClient(rng=rng)
        for _ in range(4):
            client.build_circuit(relays)
        assert all(relay.state_entries() == 4 for relay in relays)
        assert client.counters["public_key_encryptions"] == 12
        assert sum(r.counters["public_key_decryptions"] for r in relays) == 12

    def test_teardown_releases_state(self, rng):
        relays = [OnionRelay("r0", key_bits=512, rng=rng)]
        client = OnionClient(rng=rng)
        circuit = client.build_circuit(relays)
        client.close_circuit(circuit)
        assert relays[0].state_entries() == 0

    def test_analytic_comparison_favours_neutralizer(self):
        comparison = compare_resources(flows=100, packets_per_flow=10)
        rows = dict((name, (a, b)) for name, a, b in comparison.as_rows())
        assert rows["per-relay/per-box state entries"][0] == 0
        assert rows["public-key operations"][0] < rows["public-key operations"][1]


class TestPayerModel:
    def test_strategies_compare(self):
        model = PayEveryIspModel(
            [AccessProvider("att", subscribers=1000, fee_per_subscriber=2.0),
             AccessProvider("comcast", subscribers=500, fee_per_subscriber=3.0)],
            neutral_transit_monthly_cost=100.0,
        )
        outcomes = {o.strategy: o for o in model.compare()}
        assert outcomes["pay every access ISP"].monthly_cost == pytest.approx(3500.0)
        assert outcomes["neutral ISP + neutralizer"].monthly_cost == 100.0
        assert outcomes["pay no one (accept degradation)"].users_lost > 0
        sensitivity = model.monopoly_price_sensitivity([1.0, 2.0])
        assert sensitivity[2.0] == pytest.approx(7000.0)


class TestDefenses:
    def test_aggregate_detector_flags_floods(self):
        detector = AggregateDetector(window_seconds=1.0, threshold_pps=100)
        packet = udp_packet(ip("1.1.1.1"), ip("2.2.2.2"), b"x")
        state = None
        for i in range(200):
            state = detector.observe("key-setup", packet, now=i * 0.001)
        assert detector.is_misbehaving(state, now=0.2)

    def test_global_rate_limiter(self):
        limiter = GlobalRateLimiter(operations_per_second=10, burst=10)
        allowed = sum(1 for _ in range(50) if limiter.allow(now=0.0))
        assert allowed == 10 and limiter.denied == 40
        assert limiter.allow(now=2.0)

    def test_sketch_limiter_constant_memory_and_no_underestimate(self):
        limiter = PerSourceSketchLimiter(limit_per_second=5, columns=64)
        attacker = ip("10.1.0.66")
        legit = ip("10.2.0.5")
        attacker_denied = sum(1 for i in range(200) if not limiter.allow(attacker, now=i * 0.001))
        assert attacker_denied > 150
        assert limiter.allow(legit, now=0.5) in (True, False)  # never crashes
        assert limiter.memory_entries() == 4 * 64

    def test_pushback_deployment_chain(self, small_topology):
        controllers = deploy_pushback(
            [small_topology.router("cogent-br"), small_topology.router("att-br")],
            threshold_pps=10, limit_pps=5,
        )
        assert controllers[0].upstream == [controllers[1]]
        controllers[0].receive_pushback("key-setup", depth=1)
        assert controllers[0].counters["pushback_requests_received"] == 1


class TestApps:
    def test_voip_mos_degrades_with_loss_and_delay(self):
        clean = VoipQualityReport(packets_sent=100, packets_received=100,
                                  mean_latency_seconds=0.02, p95_latency_seconds=0.03,
                                  jitter_seconds=0.002)
        lossy = VoipQualityReport(packets_sent=100, packets_received=70,
                                  mean_latency_seconds=0.3, p95_latency_seconds=0.4,
                                  jitter_seconds=0.05)
        assert clean.mos > 4.0 and clean.is_usable
        assert lossy.mos < 2.5 and not lossy.is_usable
        assert clean.mos > lossy.mos

    def test_voip_call_over_simulator(self, small_topology):
        ann = small_topology.host("ann")
        google = small_topology.host("google")
        receiver = VoipReceiver(google)
        call = VoipCall(ann, google.address, receiver, duration_seconds=0.5)
        call.start()
        small_topology.run(2.0)
        report = call.report()
        assert report.packets_sent == call.total_packets
        assert report.loss_rate == 0.0 and report.mos > 4.0

    def test_web_transfer_completion(self, small_topology):
        google = small_topology.host("google")
        ann = small_topology.host("ann")
        WebServer(google, response_bytes=30_000, packets_per_second=200)
        client = WebClient(ann)
        client.request(google.address, expected_bytes=30_000)
        small_topology.run(5.0)
        result = client.result_for(google.address)
        assert result.complete and 0 < result.completion_seconds < 5.0

    def test_video_stream_quality(self, small_topology):
        google = small_topology.host("google")
        ann = small_topology.host("ann")
        receiver = VideoReceiver(ann)
        stream = VideoStream(google, ann.address, receiver, bitrate_bps=500_000,
                             duration_seconds=1.0)
        stream.start()
        small_topology.run(4.0)
        report = stream.report()
        assert report.segments_received == report.segments_sent
        assert report.is_watchable

    def test_constant_and_poisson_sources(self, small_topology, rng):
        ann = small_topology.host("ann")
        google = small_topology.host("google")
        got = []
        google.register_port_handler(40000, lambda p, h: got.append(p))
        constant = ConstantRateSource(ann, google.address, packets_per_second=100,
                                      payload_bytes=100)
        poisson = PoissonSource(ann, google.address, packets_per_second=100,
                                payload_bytes=100, rng=rng)
        n1 = constant.start(0.5)
        n2 = poisson.start(0.5)
        small_topology.run(3.0)
        assert n1 == 50 and 20 <= n2 <= 100
        assert len(got) == n1 + n2

    def test_key_setup_flood_emits_valid_requests(self, small_topology, rng, anycast_address):
        ann = small_topology.host("ann")
        hits = []
        small_topology.router("att-br").attach_local_service(
            anycast_address, lambda p, r, i: hits.append(p))
        small_topology.build_routes()
        flood = KeySetupFlood(ann, anycast_address, requests_per_second=100, rng=rng)
        flood.start(0.2)
        small_topology.run(1.0)
        assert flood.requests_sent == 20 and len(hits) == 20


class TestExtensions:
    def test_padding_roundtrip_and_buckets(self):
        padded = pad_to_bucket(b"x" * 100)
        assert len(padded) in (128, 512, 1024, 1400)
        assert unpad(padded) == b"x" * 100

    def test_masker_defeats_size_classifier(self):
        classifier = SizeClassifier()
        classifier.train("voip", 172)
        classifier.train("web", 1052)
        assert classifier.classify(175) == "voip"
        masked_voip = len(pad_to_bucket(b"v" * 160))
        masked_web = len(pad_to_bucket(b"w" * 460))
        # Both collapse into the same bucket: the classifier can no longer split them.
        assert masked_voip == masked_web

    def test_masker_overhead_accounting(self, small_topology):
        ann = small_topology.host("ann")
        google = small_topology.host("google")
        masker = TrafficMasker().install(ann)
        got = []
        google.register_port_handler(40000, lambda p, h: got.append(p))
        ann.send(udp_packet(ann.address, google.address, b"tiny"))
        small_topology.run(1.0)
        assert masker.stats.packets_masked == 1 and masker.stats.overhead_ratio > 1.0
        assert unpad(got[0].payload) == b"tiny"

    def test_tradeoff_sweep_and_minimum_safe_size(self):
        points = sweep(key_sizes=(512, 1024), rtts=(0.1,))
        assert len(points) == 2
        weak, strong = points
        assert strong.factoring_seconds > weak.factoring_seconds
        assert weak.neutralizer_cost_multiplications == 2
        assert minimum_safe_key_bits(0.1, attacker_ops_per_second=1e6) <= 1024


class TestAnalysisHelpers:
    def test_measure_throughput_counts(self):
        result = measure_throughput("noop", lambda: None, iterations=100)
        assert result.operations == 100 and result.per_second > 0

    def test_flow_tracker(self):
        tracker = FlowTracker()
        tracker.record_sent("f1")
        tracker.record_sent("f1")
        tracker.record_received("f1", latency_seconds=0.1)
        summary = tracker.summary("f1")
        assert summary.delivery_ratio == 0.5 and summary.mean_latency_seconds == 0.1

    def test_compare_rows(self):
        rows = compare({"pps": 100.0}, {"pps": 200.0})
        assert rows[0].ratio == pytest.approx(0.5)

    def test_table_and_series_formatting(self):
        table = format_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="t")
        assert "t" in table and "2.500" in table
        series = format_series("x", [1, 2], {"s1": [10, 20]})
        assert "s1" in series
        report = ExperimentReport("EX", "demo")
        report.add_table(["c"], [[1]])
        report.add_note("n")
        rendered = report.render()
        assert "EX" in rendered and "note: n" in rendered
