"""AES-128 reference implementation and mode tests (FIPS-197 vectors + properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import BLOCK_SIZE, AesCipher
from repro.crypto.backend import fast_backend_available, get_cipher
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    cbc_mac,
    ctr_decrypt,
    ctr_encrypt,
)
from repro.exceptions import DecryptionError, KeySizeError, PaddingError

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

APPENDIX_B_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
APPENDIX_B_PLAINTEXT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
APPENDIX_B_CIPHERTEXT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")


class TestAesBlock:
    def test_fips197_appendix_c_vector(self):
        assert AesCipher(FIPS_KEY).encrypt_block(FIPS_PLAINTEXT) == FIPS_CIPHERTEXT

    def test_fips197_appendix_b_vector(self):
        assert AesCipher(APPENDIX_B_KEY).encrypt_block(APPENDIX_B_PLAINTEXT) == (
            APPENDIX_B_CIPHERTEXT
        )

    def test_decrypt_inverts_encrypt(self):
        cipher = AesCipher(FIPS_KEY)
        assert cipher.decrypt_block(cipher.encrypt_block(FIPS_PLAINTEXT)) == FIPS_PLAINTEXT

    def test_rejects_bad_key_length(self):
        with pytest.raises(KeySizeError):
            AesCipher(b"short")

    def test_rejects_bad_block_length(self):
        with pytest.raises(ValueError):
            AesCipher(FIPS_KEY).encrypt_block(b"tiny")

    def test_key_property_returns_original(self):
        assert AesCipher(FIPS_KEY).key == FIPS_KEY

    @pytest.mark.skipif(not fast_backend_available(), reason="cryptography not installed")
    def test_fast_backend_matches_reference(self):
        fast = get_cipher(FIPS_KEY, backend="fast")
        pure = get_cipher(FIPS_KEY, backend="pure")
        for i in range(16):
            block = bytes([i] * BLOCK_SIZE)
            assert fast.encrypt_block(block) == pure.encrypt_block(block)
            assert fast.decrypt_block(block) == pure.decrypt_block(block)

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, key, block):
        cipher = AesCipher(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestCtrMode:
    def test_roundtrip(self):
        cipher = AesCipher(FIPS_KEY)
        data = b"destination address and then some longer payload bytes"
        nonce = b"\x01" * 8
        assert ctr_decrypt(cipher, nonce, ctr_encrypt(cipher, nonce, data)) == data

    def test_length_preserving(self):
        cipher = AesCipher(FIPS_KEY)
        for length in (0, 1, 4, 15, 16, 17, 64):
            assert len(ctr_encrypt(cipher, b"n" * 8, b"x" * length)) == length

    def test_different_nonces_give_different_ciphertext(self):
        cipher = AesCipher(FIPS_KEY)
        data = b"\x0a\x03\x00\x05"
        assert ctr_encrypt(cipher, b"a" * 8, data) != ctr_encrypt(cipher, b"b" * 8, data)

    @given(st.binary(min_size=0, max_size=200), st.binary(min_size=8, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data, nonce):
        cipher = AesCipher(FIPS_KEY)
        assert ctr_decrypt(cipher, nonce, ctr_encrypt(cipher, nonce, data)) == data


class TestCbcMode:
    def test_roundtrip(self):
        cipher = AesCipher(FIPS_KEY)
        iv = b"\x07" * 16
        data = b"payload protected end to end"
        assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, data)) == data

    def test_output_is_block_aligned(self):
        cipher = AesCipher(FIPS_KEY)
        ct = cbc_encrypt(cipher, b"\x00" * 16, b"abc")
        assert len(ct) % 16 == 0

    def test_corrupted_padding_raises(self):
        cipher = AesCipher(FIPS_KEY)
        ct = bytearray(cbc_encrypt(cipher, b"\x00" * 16, b"abc"))
        ct[-1] ^= 0xFF
        with pytest.raises((PaddingError, DecryptionError)):
            cbc_decrypt(cipher, b"\x00" * 16, bytes(ct))

    def test_misaligned_ciphertext_raises(self):
        cipher = AesCipher(FIPS_KEY)
        with pytest.raises(DecryptionError):
            cbc_decrypt(cipher, b"\x00" * 16, b"12345")

    def test_bad_iv_length_raises(self):
        cipher = AesCipher(FIPS_KEY)
        with pytest.raises(ValueError):
            cbc_encrypt(cipher, b"short", b"abc")

    @given(st.binary(min_size=0, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data):
        cipher = AesCipher(FIPS_KEY)
        iv = b"\x42" * 16
        assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, data)) == data


class TestCbcMac:
    def test_deterministic(self):
        cipher = AesCipher(FIPS_KEY)
        assert cbc_mac(cipher, b"hello") == cbc_mac(cipher, b"hello")

    def test_different_messages_differ(self):
        cipher = AesCipher(FIPS_KEY)
        assert cbc_mac(cipher, b"hello") != cbc_mac(cipher, b"hellp")

    def test_length_prefix_breaks_extension(self):
        cipher = AesCipher(FIPS_KEY)
        # Same content split differently must not collide thanks to the length prefix.
        assert cbc_mac(cipher, b"ab") != cbc_mac(cipher, b"ab\x00\x00")

    def test_tag_is_one_block(self):
        cipher = AesCipher(FIPS_KEY)
        assert len(cbc_mac(cipher, b"anything at all")) == BLOCK_SIZE
