"""RSA, prime generation, KDF and randomness tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.kdf import (
    constant_time_equal,
    derive_symmetric_key,
    derive_symmetric_key_aes,
    integrity_tag,
)
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.randomness import DeterministicRandom, SystemRandom
from repro.crypto.rsa import (
    RsaPublicKey,
    encryption_cost_multiplications,
    estimate_factoring_cost,
    generate_keypair,
    symmetric_equivalent_bits,
)
from repro.exceptions import KeySizeError, PaddingError


class TestPrimes:
    def test_small_primes_recognized(self):
        for p in (2, 3, 5, 7, 97, 65537):
            assert is_probable_prime(p)

    def test_composites_rejected(self):
        for c in (1, 4, 561, 8911, 65536):  # includes Carmichael numbers
            assert not is_probable_prime(c)

    def test_generated_prime_has_requested_width(self, rng):
        p = generate_prime(128, rng)
        assert p.bit_length() == 128
        assert is_probable_prime(p)

    def test_too_small_width_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_prime(4, rng)


class TestRsa:
    def test_keypair_roundtrip_512(self, rng):
        pair = generate_keypair(512, rng)
        message = b"nonce and Ks payload"
        assert pair.private.decrypt(pair.public.encrypt(message, rng)) == message

    def test_keypair_roundtrip_1024(self, rng):
        pair = generate_keypair(1024, rng)
        message = b"m" * 64
        assert pair.private.decrypt(pair.public.encrypt(message, rng)) == message

    def test_default_exponent_is_three(self, rng):
        pair = generate_keypair(512, rng)
        assert pair.public.exponent == 3

    def test_unsupported_size_rejected(self, rng):
        with pytest.raises(KeySizeError):
            generate_keypair(300, rng)

    def test_oversized_plaintext_rejected(self, rng):
        pair = generate_keypair(512, rng)
        with pytest.raises(ValueError):
            pair.public.encrypt(b"x" * 200, rng)

    def test_tampered_ciphertext_fails_padding(self, rng):
        pair = generate_keypair(512, rng)
        ciphertext = bytearray(pair.public.encrypt(b"secret", rng))
        ciphertext[5] ^= 0xFF
        with pytest.raises(PaddingError):
            pair.private.decrypt(bytes(ciphertext))

    def test_public_key_wire_roundtrip(self, rng):
        pair = generate_keypair(512, rng)
        parsed, consumed = RsaPublicKey.from_wire(pair.public.wire_bytes() + b"extra")
        assert parsed == pair.public
        assert consumed == len(pair.public.wire_bytes())

    def test_sign_verify(self, rng):
        pair = generate_keypair(1024, rng)
        signature = pair.private.sign(b"dns record data")
        assert pair.public.verify(b"dns record data", signature)
        assert not pair.public.verify(b"tampered", signature)

    def test_symmetric_equivalent_matches_paper_claim(self):
        # "A 512-bit RSA key is only as secure as a 56-bit symmetric key."
        assert symmetric_equivalent_bits(512) == pytest.approx(56.0)
        assert symmetric_equivalent_bits(1024) == pytest.approx(80.0)

    def test_factoring_cost_monotone_in_key_size(self):
        assert estimate_factoring_cost(512) < estimate_factoring_cost(1024)

    def test_encryption_cost_two_multiplications_for_e3(self):
        # The efficiency argument of §3.2.
        assert encryption_cost_multiplications(3, 512) == 2

    def test_deterministic_keygen_same_seed(self):
        a = generate_keypair(512, DeterministicRandom(9))
        b = generate_keypair(512, DeterministicRandom(9))
        assert a.public.modulus == b.public.modulus


class TestKdf:
    def test_derivation_is_deterministic(self):
        a = derive_symmetric_key(b"M" * 16, b"n" * 8, b"\x0a\x01\x00\x01")
        b = derive_symmetric_key(b"M" * 16, b"n" * 8, b"\x0a\x01\x00\x01")
        assert a == b
        assert len(a) == 16

    def test_changing_any_input_changes_key(self):
        base = derive_symmetric_key(b"M" * 16, b"n" * 8, b"\x0a\x01\x00\x01")
        assert derive_symmetric_key(b"X" * 16, b"n" * 8, b"\x0a\x01\x00\x01") != base
        assert derive_symmetric_key(b"M" * 16, b"m" * 8, b"\x0a\x01\x00\x01") != base
        assert derive_symmetric_key(b"M" * 16, b"n" * 8, b"\x0a\x01\x00\x02") != base

    def test_aes_variant_is_deterministic_and_distinct_per_source(self):
        a = derive_symmetric_key_aes(b"M" * 16, b"n" * 8, b"\x01\x02\x03\x04")
        b = derive_symmetric_key_aes(b"M" * 16, b"n" * 8, b"\x01\x02\x03\x05")
        assert len(a) == 16 and a != b

    def test_integrity_tag_length_and_sensitivity(self):
        tag = integrity_tag(b"k" * 16, b"header bytes", 8)
        assert len(tag) == 8
        assert tag != integrity_tag(b"k" * 16, b"header bytez", 8)

    def test_integrity_tag_length_bounds(self):
        with pytest.raises(ValueError):
            integrity_tag(b"k" * 16, b"x", 2)

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=4, max_size=4),
           st.binary(min_size=8, max_size=8), st.binary(min_size=4, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_no_accidental_collisions(self, nonce_a, src_a, nonce_b, src_b):
        key_a = derive_symmetric_key(b"M" * 16, nonce_a, src_a)
        key_b = derive_symmetric_key(b"M" * 16, nonce_b, src_b)
        if (nonce_a, src_a) != (nonce_b, src_b):
            assert key_a != key_b
        else:
            assert key_a == key_b


class TestRandomness:
    def test_same_seed_same_stream(self):
        assert DeterministicRandom(5).random_bytes(32) == DeterministicRandom(5).random_bytes(32)

    def test_fork_gives_independent_streams(self):
        root = DeterministicRandom(5)
        assert root.fork("a").random_bytes(8) != root.fork("b").random_bytes(8)

    def test_random_int_width(self, rng):
        value = rng.random_int(64)
        assert value.bit_length() == 64

    def test_random_below_bounds(self, rng):
        for _ in range(100):
            assert 0 <= rng.random_below(7) < 7

    def test_random_range(self, rng):
        for _ in range(50):
            assert 10 <= rng.random_range(10, 20) < 20

    def test_choice_and_shuffle(self, rng):
        items = [1, 2, 3, 4, 5]
        assert rng.choice(items) in items
        assert sorted(rng.shuffle(items)) == items

    def test_system_random_basics(self):
        sys_rng = SystemRandom()
        assert len(sys_rng.random_bytes(16)) == 16
        assert 0.0 <= sys_rng.random_float() < 1.0

    def test_negative_length_rejected(self, rng):
        with pytest.raises(ValueError):
            rng.random_bytes(-1)
