"""DNS substrate tests: records, zones, messages, secure transport, resolver/stub."""

import pytest

from repro.crypto import DeterministicRandom, generate_keypair
from repro.dns import (
    BootstrapInfo,
    DnsQuery,
    DnsResolverService,
    DnsResponse,
    RecordType,
    ResolverConfig,
    ResourceRecord,
    StubResolver,
    Zone,
    decrypt_query,
    decrypt_response,
    encrypt_query,
    encrypt_response,
    is_secure_payload,
    query_name_from_payload,
)
from repro.exceptions import DnsError, NxDomainError
from repro.packet import ip


class TestRecordsAndZone:
    def test_a_record_roundtrip(self):
        record = ResourceRecord.a("www.google.com", ip("10.3.0.2"))
        parsed, consumed = ResourceRecord.unpack(record.pack())
        assert parsed == record and consumed == len(record.pack())
        assert parsed.as_address() == ip("10.3.0.2")

    def test_neut_record_roundtrip(self):
        record = ResourceRecord.neut("www.google.com", [ip("10.200.0.1"), ip("10.200.0.2")])
        parsed, _ = ResourceRecord.unpack(record.pack())
        assert parsed.as_neutralizer_addresses() == [ip("10.200.0.1"), ip("10.200.0.2")]

    def test_key_record_roundtrip(self, rng):
        keypair = generate_keypair(512, rng)
        record = ResourceRecord.key("www.google.com", keypair.public)
        parsed, _ = ResourceRecord.unpack(record.pack())
        assert parsed.as_public_key() == keypair.public

    def test_neut_record_requires_addresses(self):
        with pytest.raises(DnsError):
            ResourceRecord.neut("x", [])

    def test_bootstrap_info_from_records(self, rng):
        keypair = generate_keypair(512, rng)
        records = [
            ResourceRecord.a("www.google.com", ip("10.3.0.2")),
            ResourceRecord.key("www.google.com", keypair.public),
            ResourceRecord.neut("www.google.com", [ip("10.200.0.1")]),
            ResourceRecord.a("other.example", ip("10.9.0.9")),
        ]
        info = BootstrapInfo.from_records("www.google.com", records)
        assert info.address == ip("10.3.0.2")
        assert info.public_key == keypair.public
        assert info.neutralizer_addresses == [ip("10.200.0.1")]
        assert info.is_neutralized and info.is_complete

    def test_zone_lookup_and_nxdomain(self):
        zone = Zone()
        zone.register_host("www.google.com", ip("10.3.0.2"))
        assert len(zone.lookup("www.google.com", RecordType.A)) == 1
        assert zone.lookup("www.google.com", RecordType.KEY) == []
        with pytest.raises(NxDomainError):
            zone.lookup("missing.example")
        zone.remove_name("www.google.com")
        assert "www.google.com" not in zone


class TestMessages:
    def test_query_roundtrip(self):
        query = DnsQuery(query_id=7, name="www.google.com", rtype=RecordType.A)
        assert DnsQuery.unpack(query.pack()) == query

    def test_response_roundtrip(self):
        response = DnsResponse.ok(9, [ResourceRecord.a("a.example", ip("10.0.0.1"))])
        parsed = DnsResponse.unpack(response.pack())
        assert parsed.query_id == 9 and parsed.is_ok and len(parsed.records) == 1

    def test_nxdomain_response(self):
        parsed = DnsResponse.unpack(DnsResponse.nxdomain(3).pack())
        assert not parsed.is_ok

    def test_query_name_extraction_is_the_dpi_attack_surface(self):
        query = DnsQuery(query_id=1, name="www.google.com")
        assert query_name_from_payload(query.pack()) == "www.google.com"
        assert query_name_from_payload(b"\xd5 encrypted junk") is None


class TestSecureTransport:
    def test_query_and_response_roundtrip(self, rng):
        resolver_keys = generate_keypair(1024, rng)
        query_bytes = DnsQuery(query_id=4, name="www.google.com").pack()
        payload, client_state = encrypt_query(resolver_keys.public, query_bytes, rng)
        assert is_secure_payload(payload)
        recovered, server_state = decrypt_query(resolver_keys.private, payload)
        assert recovered == query_bytes
        response_bytes = DnsResponse.nxdomain(4).pack()
        encrypted = encrypt_response(server_state, response_bytes)
        assert decrypt_response(client_state, encrypted) == response_bytes

    def test_query_name_not_visible_in_ciphertext(self, rng):
        resolver_keys = generate_keypair(1024, rng)
        query_bytes = DnsQuery(query_id=4, name="www.google.com").pack()
        payload, _ = encrypt_query(resolver_keys.public, query_bytes, rng)
        assert b"google" not in payload

    def test_non_secure_payload_rejected(self, rng):
        resolver_keys = generate_keypair(1024, rng)
        with pytest.raises(DnsError):
            decrypt_query(resolver_keys.private, b"plain query bytes")


class TestResolverOverNetwork:
    def _build(self, small_topology, rng, secure):
        google = small_topology.host("google")
        resolver_host = small_topology.add_host("resolver", "cogent")
        small_topology.add_link("resolver", "cogent-br")
        small_topology.build_routes()
        zone = Zone()
        zone.register_host("www.google.com", google.address,
                           neutralizer_addresses=[ip("10.200.0.1")])
        keypair = generate_keypair(1024, rng)
        service = DnsResolverService(zone, keypair=keypair).attach(resolver_host)
        config = ResolverConfig(address=resolver_host.address,
                                public_key=keypair.public if secure else None,
                                use_secure_transport=secure)
        stub = StubResolver(small_topology.host("ann"), config, rng=rng)
        return service, stub

    def test_cleartext_lookup(self, small_topology, rng):
        service, stub = self._build(small_topology, rng, secure=False)
        results = []
        stub.lookup_bootstrap("www.google.com", lambda info, err: results.append((info, err)))
        small_topology.run(3.0)
        info, error = results[0]
        assert error is None and info.address == small_topology.host("google").address
        assert service.queries_served == 1 and service.secure_queries_served == 0

    def test_secure_lookup(self, small_topology, rng):
        service, stub = self._build(small_topology, rng, secure=True)
        results = []
        stub.lookup("www.google.com", lambda records, err: results.append((records, err)))
        small_topology.run(3.0)
        records, error = results[0]
        assert error is None and len(records) >= 1
        assert service.secure_queries_served == 1
        assert stub.mean_latency > 0

    def test_nxdomain_reported(self, small_topology, rng):
        _service, stub = self._build(small_topology, rng, secure=False)
        results = []
        stub.lookup("nope.example", lambda records, err: results.append((records, err)))
        small_topology.run(3.0)
        assert results[0][0] == [] and "rcode" in results[0][1]

    def test_timeout_when_resolver_unreachable(self, small_topology, rng):
        ann = small_topology.host("ann")
        config = ResolverConfig(address=ip("10.99.0.1"))
        stub = StubResolver(ann, config, rng=rng, timeout_seconds=0.5)
        results = []
        stub.lookup("www.google.com", lambda records, err: results.append((records, err)))
        small_topology.run(2.0)
        assert "timeout" in results[0][1]
        assert stub.timeouts == 1 and stub.pending_count == 0
