"""Simulator substrate tests: engine, links, schedulers-on-links, routing, trace."""

import pytest

from repro.exceptions import RoutingError, SchedulingError, TopologyError
from repro.netsim import Relationship, Simulator, Topology, TraceCollector
from repro.netsim.stats import Counters, LatencySampler
from repro.packet import ip, udp_packet
from repro.qos.schedulers import FifoScheduler
from repro.units import mbps, msec, transmission_time


class TestEngine:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.2, seen.append, "b")
        sim.schedule(0.1, seen.append, "a")
        sim.schedule(0.3, seen.append, "c")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.1, seen.append, 1)
        sim.schedule(0.1, seen.append, 2)
        sim.run()
        assert seen == [1, 2]

    def test_run_until_is_inclusive_and_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "x")
        sim.schedule(2.0, seen.append, "y")
        sim.run(until=1.0)
        assert seen == ["x"] and sim.now == 1.0
        sim.run()
        assert seen == ["x", "y"]

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(0.1, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.1, lambda: sim.schedule(0.1, seen.append, "nested"))
        sim.run()
        assert seen == ["nested"] and sim.now == pytest.approx(0.2)

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(0.01 * i, lambda: None)
        executed = sim.run(max_events=4)
        assert executed == 4 and sim.pending_events == 6

    def test_cancelled_events_are_compacted_lazily(self):
        # Regression: cancelled events used to stay heap-resident until their
        # deadline, an unbounded leak for far-future timers that are always
        # cancelled (retransmits, DNS timeouts).
        sim = Simulator()
        events = [sim.schedule(1000.0 + i, lambda: None) for i in range(400)]
        keepers = [sim.schedule(0.001 * i, lambda: None) for i in range(40)]
        assert sim.pending_events == 440
        for event in events:
            event.cancel()
        # Compaction kicks in once cancelled entries exceed half the queue.
        assert sim.pending_events <= len(keepers) + len(events) // 2 + 1
        assert all(not event.cancelled for event in sim._heap if event in keepers)

    def test_compaction_preserves_order_and_survivors(self):
        sim = Simulator()
        seen = []
        doomed = [sim.schedule(500.0 + i, seen.append, "never") for i in range(100)]
        sim.schedule(0.2, seen.append, "b")
        sim.schedule(0.1, seen.append, "a")
        for event in doomed:
            event.cancel()
        survivor = sim.schedule(0.3, seen.append, "c")
        sim.run()
        assert seen == ["a", "b", "c"] and not survivor.cancelled
        assert sim.pending_events == 0

    def test_double_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(0.1, lambda: None)
        event.cancel()
        event.cancel()
        assert sim._cancelled_pending == 1
        sim.run()
        assert sim._cancelled_pending == 0

    def test_stale_cancels_after_reset_do_not_count(self):
        sim = Simulator()
        stale = [sim.schedule(1.0 + i, lambda: None) for i in range(100)]
        sim.reset()
        fresh = [sim.schedule(1.0 + i, lambda: None) for i in range(100)]
        for event in stale:
            event.cancel()
        assert sim._cancelled_pending == 0
        assert sim.pending_events == len(fresh)

    def test_late_cancel_of_executed_event_does_not_count(self):
        sim = Simulator()
        fired = sim.schedule(0.1, lambda: None)
        sim.run()
        fired.cancel()
        assert sim._cancelled_pending == 0

    def test_small_queues_skip_compaction(self):
        sim = Simulator()
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        # Below the compaction floor the placeholders stay until run() pops them.
        assert sim.pending_events == 10
        sim.run()
        assert sim.pending_events == 0 and sim.processed_events == 0


class TestStats:
    def test_counters(self):
        counters = Counters()
        counters.increment("x")
        counters.increment("x", 2)
        assert counters.get("x") == 3 and counters.get("missing") == 0

    def test_latency_sampler(self):
        sampler = LatencySampler()
        for value in (0.1, 0.2, 0.3, 0.4):
            sampler.record(value)
        assert sampler.mean == pytest.approx(0.25)
        assert sampler.percentile(1.0) == pytest.approx(0.4)
        assert sampler.jitter == pytest.approx(0.1)

    def test_empty_sampler_is_zero(self):
        sampler = LatencySampler()
        assert sampler.mean == 0.0 and sampler.percentile(0.5) == 0.0
        assert sampler.maximum == 0.0 and sampler.jitter == 0.0 and sampler.count == 0

    def test_single_sample_has_no_jitter(self):
        sampler = LatencySampler()
        sampler.record(0.25)
        assert sampler.jitter == 0.0
        assert sampler.mean == pytest.approx(0.25)
        assert sampler.percentile(0.0) == pytest.approx(0.25)
        assert sampler.percentile(1.0) == pytest.approx(0.25)

    def test_percentile_rejects_out_of_range_fractions(self):
        sampler = LatencySampler()
        sampler.record(0.1)
        with pytest.raises(ValueError):
            sampler.percentile(1.5)
        with pytest.raises(ValueError):
            sampler.percentile(-0.1)

    def test_counters_as_dict_is_a_copy(self):
        counters = Counters()
        counters.increment("x")
        snapshot = counters.as_dict()
        snapshot["x"] = 99
        assert counters.get("x") == 1

    def test_link_stats_drop_rate(self):
        from repro.netsim.stats import LinkStats

        stats = LinkStats()
        assert stats.drop_rate == 0.0  # no offered traffic yet
        stats.record_sent(100)
        stats.record_sent(100)
        stats.record_drop()
        stats.record_queue_depth(5)
        stats.record_queue_depth(3)
        assert stats.drop_rate == pytest.approx(1 / 3)
        assert stats.queue_peak == 5 and stats.bytes_sent == 200


class TestLinksAndDelivery:
    def test_end_to_end_latency_matches_link_parameters(self, small_topology):
        ann = small_topology.host("ann")
        google = small_topology.host("google")
        arrivals = []
        google.register_port_handler(5000, lambda p, h: arrivals.append(h.sim.now))
        packet = udp_packet(ann.address, google.address, b"x" * 100, destination_port=5000)
        ann.send(packet)
        small_topology.run(1.0)
        expected_prop = msec(1) + msec(5) + msec(1)
        expected_tx = (
            transmission_time(packet.size_bytes, mbps(100)) * 2
            + transmission_time(packet.size_bytes, mbps(1000))
        )
        assert len(arrivals) == 1
        assert arrivals[0] == pytest.approx(expected_prop + expected_tx, rel=0.01)

    def test_queue_drops_when_scheduler_full(self):
        topo = Topology()
        topo.add_isp("a", 1, "10.1.0.0/16")
        topo.add_isp("b", 2, "10.2.0.0/16")
        topo.add_router("r1", "a", border=True)
        topo.add_router("r2", "b", border=True)
        sender = topo.add_host("s", "a")
        receiver = topo.add_host("d", "b")
        topo.add_link("s", "r1", rate_bps=mbps(100), delay_seconds=msec(1))
        # Tiny bottleneck with a 4-packet queue.
        topo.add_link("r1", "r2", rate_bps=mbps(0.5), delay_seconds=msec(1),
                      scheduler_a_to_b=FifoScheduler(capacity=4))
        topo.add_link("r2", "d", rate_bps=mbps(100), delay_seconds=msec(1))
        topo.build_routes()
        got = []
        receiver.register_port_handler(5000, lambda p, h: got.append(p))
        for _ in range(50):
            sender.send(udp_packet(sender.address, receiver.address, b"y" * 1000,
                                   destination_port=5000))
        topo.run(5.0)
        bottleneck = topo.link_between("r1", "r2")
        r1_end = next(e for e in bottleneck.ends if e.node.name == "r1")
        assert bottleneck.stats_from(r1_end).packets_dropped > 0
        assert 0 < len(got) < 50

    def test_ttl_expiry_drops_packet(self, small_topology):
        ann = small_topology.host("ann")
        google = small_topology.host("google")
        packet = udp_packet(ann.address, google.address, b"x", ttl=1)
        ann.send(packet)
        small_topology.run(1.0)
        routers = [small_topology.router("att-br"), small_topology.router("cogent-br")]
        assert sum(r.counters.get("packets_ttl_expired") for r in routers) >= 1

    def test_unroutable_packet_counted(self, small_topology):
        ann = small_topology.host("ann")
        ann.send(udp_packet(ann.address, ip("10.99.0.1"), b"x"))
        small_topology.run(1.0)
        assert small_topology.router("att-br").counters.get("packets_unroutable") == 1


class TestTopologyAndRouting:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_isp("a", 1, "10.1.0.0/16")
        topo.add_host("h", "a")
        with pytest.raises(TopologyError):
            topo.add_host("h", "a")

    def test_host_requires_isp_or_address(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_host("lonely")

    def test_single_homed_host_cannot_connect_twice(self, small_topology):
        with pytest.raises(TopologyError):
            small_topology.add_link("ann", "cogent-br")

    def test_isp_address_ownership(self, small_topology):
        att = small_topology.isps.get("att")
        ann = small_topology.host("ann")
        assert att.owns_address(ann.address)
        assert small_topology.isps.owner_of(ann.address).name == "att"

    def test_relationships_are_symmetric(self, small_topology):
        att = small_topology.isps.get("att")
        cogent = small_topology.isps.get("cogent")
        assert att.is_peer_isp("cogent") and cogent.is_peer_isp("att")

    def test_anycast_routes_to_nearest_member(self):
        topo = Topology()
        topo.add_isp("a", 1, "10.1.0.0/16")
        topo.add_isp("c", 3, "10.3.0.0/16")
        topo.add_router("left", "a", border=True)
        topo.add_router("mid", "a")
        topo.add_router("east", "c", border=True)
        topo.add_router("west", "c", border=True)
        sender = topo.add_host("src", "a")
        topo.add_link("src", "left")
        topo.add_link("left", "mid")
        # east is closer (1 hop from mid), west is farther (via east).
        topo.add_link("mid", "east", delay_seconds=msec(1))
        topo.add_link("east", "west", delay_seconds=msec(50))
        anycast = ip("10.200.0.1")
        topo.join_anycast_group(anycast, "east")
        topo.join_anycast_group(anycast, "west")
        topo.build_routes()
        hits = []
        topo.router("east").attach_local_service(anycast, lambda p, r, i: hits.append(r.name))
        topo.router("west").attach_local_service(anycast, lambda p, r, i: hits.append(r.name))
        sender.send(udp_packet(sender.address, anycast, b"probe"))
        topo.run(1.0)
        assert hits == ["east"]

    def test_shortest_path_and_reachability(self, small_topology):
        routing = small_topology.routing
        path = routing.shortest_path("ann", "google")
        assert path == ["ann", "att-br", "cogent-br", "google"]
        with pytest.raises(RoutingError):
            routing.shortest_path("ann", "nonexistent")

    def test_describe_contains_isps(self, small_topology):
        text = small_topology.describe()
        assert "att" in text and "cogent" in text


class TestTrace:
    def test_trace_records_addresses_and_payload(self, small_topology):
        trace = TraceCollector()
        small_topology.router("att-br").ingress_hooks.append(trace.router_hook())
        ann = small_topology.host("ann")
        google = small_topology.host("google")
        ann.send(udp_packet(ann.address, google.address, b"needle-payload"))
        small_topology.run(1.0)
        assert trace.ever_saw_address(google.address, "att-br")
        assert trace.payload_contains(b"needle", "att-br")
        assert len(trace.at_vantage("att-br")) == 1
        trace.clear()
        assert len(trace) == 0
