"""Max-min solver tests: known fair allocations, degenerate inputs, invariants."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.scale.solver import CapacityProblem, max_min_allocation, verify_max_min


def single_bottleneck(demands, capacity, unit=1.0):
    demands = np.asarray(demands, dtype=float)
    return CapacityProblem(
        demands=demands,
        usage=np.full((1, demands.size), unit),
        capacities=np.array([capacity], dtype=float),
    )


class TestMaxMin:
    def test_equal_demands_split_evenly(self):
        allocation = max_min_allocation(single_bottleneck([10, 10, 10, 10], 20.0))
        assert np.allclose(allocation.rates, 5.0)
        assert (allocation.bottleneck == 0).all()

    def test_small_demand_is_met_and_rest_shared(self):
        # The textbook max-min example: demands 2, 10, 10 on capacity 10
        # give 2 to the small flow and split the remaining 8 fairly.
        allocation = max_min_allocation(single_bottleneck([2, 10, 10], 10.0))
        assert np.allclose(allocation.rates, [2.0, 4.0, 4.0])
        assert allocation.bottleneck[0] == -1  # demand-limited
        assert allocation.bottleneck[1] == 0 and allocation.bottleneck[2] == 0

    def test_uncongested_everyone_gets_demand(self):
        allocation = max_min_allocation(single_bottleneck([3, 4, 5], 100.0))
        assert np.allclose(allocation.rates, [3, 4, 5])
        assert (allocation.bottleneck == -1).all()

    def test_heterogeneous_usage_coefficients(self):
        # Flow 1's packets are twice as big: at the fair point both flows get
        # the same *rate* r with r + 2r = 12 → r = 4.
        problem = CapacityProblem(
            demands=np.array([100.0, 100.0]),
            usage=np.array([[1.0, 2.0]]),
            capacities=np.array([12.0]),
        )
        allocation = max_min_allocation(problem)
        assert np.allclose(allocation.rates, [4.0, 4.0])

    def test_two_resource_chain(self):
        # Flow A crosses both resources, B only the first, C only the second.
        # Capacities 10 and 6: the second resource is tighter, so A and C
        # settle at 3 there, then B fills the first resource's remainder.
        problem = CapacityProblem(
            demands=np.array([100.0, 100.0, 100.0]),
            usage=np.array([
                [1.0, 1.0, 0.0],
                [1.0, 0.0, 1.0],
            ]),
            capacities=np.array([10.0, 6.0]),
        )
        allocation = max_min_allocation(problem)
        assert np.allclose(allocation.rates, [3.0, 7.0, 3.0])
        assert allocation.bottleneck[0] == 1 and allocation.bottleneck[1] == 0

    def test_feasibility_and_utilization(self):
        rng = np.random.default_rng(5)
        problem = CapacityProblem(
            demands=rng.uniform(0.5, 5.0, size=30),
            usage=rng.uniform(0.0, 2.0, size=(6, 30)),
            capacities=rng.uniform(5.0, 30.0, size=6),
        )
        allocation = max_min_allocation(problem)
        used = problem.usage @ allocation.rates
        assert (used <= problem.capacities * (1 + 1e-6)).all()
        assert (allocation.rates <= problem.demands * (1 + 1e-6)).all()
        assert (allocation.utilization(problem) <= 1 + 1e-6).all()
        # Max-min property: every flow is demand-limited or crosses a
        # saturated resource.
        saturated = used >= problem.capacities * (1 - 1e-6)
        demand_limited = allocation.rates >= problem.demands * (1 - 1e-6)
        crosses_saturated = (problem.usage[saturated] > 1e-12).any(axis=0)
        assert (demand_limited | crosses_saturated).all()

    def test_zero_demand_flows_stay_zero(self):
        allocation = max_min_allocation(single_bottleneck([0.0, 5.0], 4.0))
        assert allocation.rates[0] == 0.0 and allocation.rates[1] == pytest.approx(4.0)

    def test_zero_capacity_resource_kills_crossing_flows(self):
        problem = CapacityProblem(
            demands=np.array([5.0, 5.0]),
            usage=np.array([[1.0, 0.0], [0.0, 1.0]]),
            capacities=np.array([0.0, 10.0]),
        )
        allocation = max_min_allocation(problem)
        assert allocation.rates[0] == 0.0
        assert allocation.rates[1] == pytest.approx(5.0)
        assert allocation.bottleneck[0] == 0

    def test_tiny_usage_coefficients_still_constrain(self):
        # Regression: membership tests must be exact-zero, not epsilon — the
        # scenario's cpu-seconds-per-bit coefficients are ~1e-10 and were once
        # invisible to the solver, letting it return infeasible rates.
        problem = CapacityProblem(
            demands=np.array([1e12]),
            usage=np.array([[1e-10]]),
            capacities=np.array([50.0]),
        )
        allocation = max_min_allocation(problem)
        used = (problem.usage @ allocation.rates).item()
        assert used <= 50.0 * (1 + 1e-6)
        assert allocation.rates[0] == pytest.approx(50.0 / 1e-10)
        assert allocation.bottleneck[0] == 0

    def test_determinism(self):
        problem = single_bottleneck([1, 2, 3, 4, 5], 7.5)
        first = max_min_allocation(problem)
        second = max_min_allocation(problem)
        assert np.array_equal(first.rates, second.rates)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            CapacityProblem(
                demands=np.array([1.0, 2.0]),
                usage=np.ones((1, 3)),
                capacities=np.array([1.0]),
            )

    def test_negative_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            CapacityProblem(
                demands=np.array([-1.0]),
                usage=np.ones((1, 1)),
                capacities=np.array([1.0]),
            )


class TestVerifyMaxMin:
    """The optimality certificate gating the warm-start fast path."""

    def test_accepts_the_fair_split_with_attribution(self):
        problem = single_bottleneck([10, 10], 10.0)
        bottleneck = verify_max_min(problem, np.array([5.0, 5.0]))
        assert bottleneck is not None and (bottleneck == 0).all()

    def test_accepts_met_demands_as_demand_limited(self):
        problem = single_bottleneck([3, 4], 100.0)
        bottleneck = verify_max_min(problem, np.array([3.0, 4.0]))
        assert bottleneck is not None and (bottleneck == -1).all()

    def test_rejects_feasible_but_unfair(self):
        # [3, 7] saturates the link but is not max-min: flow 0 could be
        # raised by lowering the better-off flow 1.
        problem = single_bottleneck([10, 10], 10.0)
        assert verify_max_min(problem, np.array([3.0, 7.0])) is None

    def test_rejects_underfull(self):
        problem = single_bottleneck([10, 10], 10.0)
        assert verify_max_min(problem, np.array([4.0, 4.0])) is None

    def test_rejects_infeasible_and_overdemand(self):
        problem = single_bottleneck([10, 10], 10.0)
        assert verify_max_min(problem, np.array([6.0, 6.0])) is None
        problem2 = single_bottleneck([2, 2], 10.0)
        assert verify_max_min(problem2, np.array([3.0, 3.0])) is None

    def test_rejects_wrong_shape(self):
        problem = single_bottleneck([10, 10], 10.0)
        assert verify_max_min(problem, np.array([5.0, 5.0, 5.0])) is None

    def test_certifies_every_cold_solution_on_random_problems(self):
        rng = np.random.default_rng(17)
        for trial in range(100):
            flows = int(rng.integers(2, 30))
            resources = int(rng.integers(1, 8))
            problem = CapacityProblem(
                demands=rng.uniform(0.1, 5.0, flows),
                usage=rng.uniform(0, 2.0, (resources, flows))
                * (rng.random((resources, flows)) < 0.6),
                capacities=rng.uniform(1.0, 30.0, resources),
            )
            allocation = max_min_allocation(problem)
            assert verify_max_min(problem, allocation.rates) is not None, trial
            # And a perturbed copy must not certify when congested.
            if (allocation.rates < problem.demands * 0.99).any():
                skewed = allocation.rates * rng.uniform(0.5, 0.95, flows)
                assert verify_max_min(problem, skewed) is None


class TestWarmStart:
    def test_demand_certificate_fires_without_a_hint(self):
        allocation = max_min_allocation(single_bottleneck([3, 4, 5], 100.0))
        assert allocation.iterations == 0
        assert not allocation.warm_started
        assert np.allclose(allocation.rates, [3, 4, 5])

    def test_hint_reuse_returns_the_exact_optimum(self):
        problem = single_bottleneck([2, 10, 10], 10.0)
        cold = max_min_allocation(problem)
        warm = max_min_allocation(problem, warm_start=cold.rates)
        assert warm.warm_started and warm.iterations == 0
        assert np.array_equal(warm.rates, cold.rates)
        assert np.array_equal(warm.bottleneck, cold.bottleneck)

    def test_bad_hints_fall_back_to_the_cold_fill(self):
        problem = single_bottleneck([2, 10, 10], 10.0)
        for hint in (np.array([9.0, 9.0, 9.0]),       # infeasible
                     np.array([1.0, 1.0, 1.0]),        # underfull
                     np.array([1.0, 2.0])):            # wrong shape
            allocation = max_min_allocation(problem, warm_start=hint)
            assert not allocation.warm_started
            assert np.allclose(allocation.rates, [2.0, 4.0, 4.0])
