"""Solver tests: max-min and alpha-fair allocations, invariants, warm starts."""

import math

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.scale.solver import (
    CapacityProblem,
    alpha_fair_allocation,
    max_min_allocation,
    solve_allocation,
    verify_alpha_fair,
    verify_max_min,
)


def single_bottleneck(demands, capacity, unit=1.0):
    demands = np.asarray(demands, dtype=float)
    return CapacityProblem(
        demands=demands,
        usage=np.full((1, demands.size), unit),
        capacities=np.array([capacity], dtype=float),
    )


class TestMaxMin:
    def test_equal_demands_split_evenly(self):
        allocation = max_min_allocation(single_bottleneck([10, 10, 10, 10], 20.0))
        assert np.allclose(allocation.rates, 5.0)
        assert (allocation.bottleneck == 0).all()

    def test_small_demand_is_met_and_rest_shared(self):
        # The textbook max-min example: demands 2, 10, 10 on capacity 10
        # give 2 to the small flow and split the remaining 8 fairly.
        allocation = max_min_allocation(single_bottleneck([2, 10, 10], 10.0))
        assert np.allclose(allocation.rates, [2.0, 4.0, 4.0])
        assert allocation.bottleneck[0] == -1  # demand-limited
        assert allocation.bottleneck[1] == 0 and allocation.bottleneck[2] == 0

    def test_uncongested_everyone_gets_demand(self):
        allocation = max_min_allocation(single_bottleneck([3, 4, 5], 100.0))
        assert np.allclose(allocation.rates, [3, 4, 5])
        assert (allocation.bottleneck == -1).all()

    def test_heterogeneous_usage_coefficients(self):
        # Flow 1's packets are twice as big: at the fair point both flows get
        # the same *rate* r with r + 2r = 12 → r = 4.
        problem = CapacityProblem(
            demands=np.array([100.0, 100.0]),
            usage=np.array([[1.0, 2.0]]),
            capacities=np.array([12.0]),
        )
        allocation = max_min_allocation(problem)
        assert np.allclose(allocation.rates, [4.0, 4.0])

    def test_two_resource_chain(self):
        # Flow A crosses both resources, B only the first, C only the second.
        # Capacities 10 and 6: the second resource is tighter, so A and C
        # settle at 3 there, then B fills the first resource's remainder.
        problem = CapacityProblem(
            demands=np.array([100.0, 100.0, 100.0]),
            usage=np.array([
                [1.0, 1.0, 0.0],
                [1.0, 0.0, 1.0],
            ]),
            capacities=np.array([10.0, 6.0]),
        )
        allocation = max_min_allocation(problem)
        assert np.allclose(allocation.rates, [3.0, 7.0, 3.0])
        assert allocation.bottleneck[0] == 1 and allocation.bottleneck[1] == 0

    def test_feasibility_and_utilization(self):
        rng = np.random.default_rng(5)
        problem = CapacityProblem(
            demands=rng.uniform(0.5, 5.0, size=30),
            usage=rng.uniform(0.0, 2.0, size=(6, 30)),
            capacities=rng.uniform(5.0, 30.0, size=6),
        )
        allocation = max_min_allocation(problem)
        used = problem.usage @ allocation.rates
        assert (used <= problem.capacities * (1 + 1e-6)).all()
        assert (allocation.rates <= problem.demands * (1 + 1e-6)).all()
        assert (allocation.utilization(problem) <= 1 + 1e-6).all()
        # Max-min property: every flow is demand-limited or crosses a
        # saturated resource.
        saturated = used >= problem.capacities * (1 - 1e-6)
        demand_limited = allocation.rates >= problem.demands * (1 - 1e-6)
        crosses_saturated = (problem.usage[saturated] > 1e-12).any(axis=0)
        assert (demand_limited | crosses_saturated).all()

    def test_zero_demand_flows_stay_zero(self):
        allocation = max_min_allocation(single_bottleneck([0.0, 5.0], 4.0))
        assert allocation.rates[0] == 0.0 and allocation.rates[1] == pytest.approx(4.0)

    def test_zero_capacity_resource_kills_crossing_flows(self):
        problem = CapacityProblem(
            demands=np.array([5.0, 5.0]),
            usage=np.array([[1.0, 0.0], [0.0, 1.0]]),
            capacities=np.array([0.0, 10.0]),
        )
        allocation = max_min_allocation(problem)
        assert allocation.rates[0] == 0.0
        assert allocation.rates[1] == pytest.approx(5.0)
        assert allocation.bottleneck[0] == 0

    def test_tiny_usage_coefficients_still_constrain(self):
        # Regression: membership tests must be exact-zero, not epsilon — the
        # scenario's cpu-seconds-per-bit coefficients are ~1e-10 and were once
        # invisible to the solver, letting it return infeasible rates.
        problem = CapacityProblem(
            demands=np.array([1e12]),
            usage=np.array([[1e-10]]),
            capacities=np.array([50.0]),
        )
        allocation = max_min_allocation(problem)
        used = (problem.usage @ allocation.rates).item()
        assert used <= 50.0 * (1 + 1e-6)
        assert allocation.rates[0] == pytest.approx(50.0 / 1e-10)
        assert allocation.bottleneck[0] == 0

    def test_determinism(self):
        problem = single_bottleneck([1, 2, 3, 4, 5], 7.5)
        first = max_min_allocation(problem)
        second = max_min_allocation(problem)
        assert np.array_equal(first.rates, second.rates)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            CapacityProblem(
                demands=np.array([1.0, 2.0]),
                usage=np.ones((1, 3)),
                capacities=np.array([1.0]),
            )

    def test_negative_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            CapacityProblem(
                demands=np.array([-1.0]),
                usage=np.ones((1, 1)),
                capacities=np.array([1.0]),
            )


class TestVerifyMaxMin:
    """The optimality certificate gating the warm-start fast path."""

    def test_accepts_the_fair_split_with_attribution(self):
        problem = single_bottleneck([10, 10], 10.0)
        bottleneck = verify_max_min(problem, np.array([5.0, 5.0]))
        assert bottleneck is not None and (bottleneck == 0).all()

    def test_accepts_met_demands_as_demand_limited(self):
        problem = single_bottleneck([3, 4], 100.0)
        bottleneck = verify_max_min(problem, np.array([3.0, 4.0]))
        assert bottleneck is not None and (bottleneck == -1).all()

    def test_rejects_feasible_but_unfair(self):
        # [3, 7] saturates the link but is not max-min: flow 0 could be
        # raised by lowering the better-off flow 1.
        problem = single_bottleneck([10, 10], 10.0)
        assert verify_max_min(problem, np.array([3.0, 7.0])) is None

    def test_rejects_underfull(self):
        problem = single_bottleneck([10, 10], 10.0)
        assert verify_max_min(problem, np.array([4.0, 4.0])) is None

    def test_rejects_infeasible_and_overdemand(self):
        problem = single_bottleneck([10, 10], 10.0)
        assert verify_max_min(problem, np.array([6.0, 6.0])) is None
        problem2 = single_bottleneck([2, 2], 10.0)
        assert verify_max_min(problem2, np.array([3.0, 3.0])) is None

    def test_rejects_wrong_shape(self):
        problem = single_bottleneck([10, 10], 10.0)
        assert verify_max_min(problem, np.array([5.0, 5.0, 5.0])) is None

    def test_certifies_every_cold_solution_on_random_problems(self):
        rng = np.random.default_rng(17)
        for trial in range(100):
            flows = int(rng.integers(2, 30))
            resources = int(rng.integers(1, 8))
            problem = CapacityProblem(
                demands=rng.uniform(0.1, 5.0, flows),
                usage=rng.uniform(0, 2.0, (resources, flows))
                * (rng.random((resources, flows)) < 0.6),
                capacities=rng.uniform(1.0, 30.0, resources),
            )
            allocation = max_min_allocation(problem)
            assert verify_max_min(problem, allocation.rates) is not None, trial
            # And a perturbed copy must not certify when congested.
            if (allocation.rates < problem.demands * 0.99).any():
                skewed = allocation.rates * rng.uniform(0.5, 0.95, flows)
                assert verify_max_min(problem, skewed) is None


def chain_problem(alpha, elastic=None, demands=100.0):
    """Flow A crosses both links, B only the first, C only the second."""
    return CapacityProblem(
        demands=np.full(3, demands),
        usage=np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 1.0]]),
        capacities=np.array([10.0, 6.0]),
        elastic=np.ones(3, dtype=bool) if elastic is None else elastic,
        alpha=alpha,
    )


class TestElastic:
    def test_proportional_fairness_on_the_chain(self):
        # Closed form: 1/rA = 1/(10-rA) + 1/(6-rA) → 3rA^2 - 32rA + 60 = 0.
        expected_a = (32 - math.sqrt(32 ** 2 - 4 * 3 * 60)) / 6
        allocation = alpha_fair_allocation(chain_problem(1.0))
        assert allocation.rates[0] == pytest.approx(expected_a, rel=1e-3)
        assert allocation.rates[1] == pytest.approx(10 - expected_a, rel=1e-3)
        assert allocation.rates[2] == pytest.approx(6 - expected_a, rel=1e-3)

    def test_alpha_inf_recovers_max_min_exactly(self):
        elastic = alpha_fair_allocation(chain_problem(math.inf))
        inelastic = max_min_allocation(CapacityProblem(
            demands=np.full(3, 100.0),
            usage=np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 1.0]]),
            capacities=np.array([10.0, 6.0]),
        ))
        assert np.array_equal(elastic.rates, inelastic.rates)
        assert elastic.iterations == inelastic.iterations
        assert elastic.prices is not None and (elastic.prices == 0).all()

    def test_growing_alpha_approaches_max_min(self):
        # Mo & Walrand: the alpha-fair family converges to max-min ([3,7,3]).
        target = np.array([3.0, 7.0, 3.0])
        deviations = []
        for alpha in (1.0, 2.0, 8.0, 16.0):
            rates = alpha_fair_allocation(chain_problem(alpha)).rates
            deviations.append(np.abs(rates - target).max())
        assert deviations == sorted(deviations, reverse=True)
        assert deviations[-1] < 0.01

    def test_demand_caps_respected_and_certificate_fires(self):
        allocation = alpha_fair_allocation(chain_problem(2.0, demands=2.0))
        assert allocation.iterations == 0  # demands feasible: peak for all
        assert np.allclose(allocation.rates, 2.0)
        assert (allocation.bottleneck == -1).all()

    def test_feasibility_on_random_problems(self):
        rng = np.random.default_rng(23)
        for trial in range(25):
            flows = int(rng.integers(2, 40))
            resources = int(rng.integers(1, 10))
            problem = CapacityProblem(
                demands=rng.uniform(0.1, 5.0, flows),
                usage=rng.uniform(0, 2.0, (resources, flows))
                * (rng.random((resources, flows)) < 0.6),
                capacities=rng.uniform(1.0, 30.0, resources),
                elastic=rng.random(flows) < 0.7,
                weights=rng.uniform(0.5, 10.0, flows),
                alpha=float(rng.uniform(0.8, 4.0)),
            )
            allocation = solve_allocation(problem)
            used = problem.usage @ allocation.rates
            assert (used <= problem.capacities * (1 + 1e-6)).all(), trial
            assert (allocation.rates <= problem.demands * (1 + 1e-6)).all(), trial
            assert (allocation.rates >= 0).all(), trial

    def test_weights_buy_per_client_fairness(self):
        # A 9-client aggregate with weight 9 and usage 9x must end up with
        # the same per-client rate as a single client on the same link.
        problem = CapacityProblem(
            demands=np.array([100.0, 100.0]),
            usage=np.array([[9.0, 1.0]]),
            capacities=np.array([10.0]),
            elastic=np.ones(2, dtype=bool),
            weights=np.array([9.0, 1.0]),
            alpha=2.0,
        )
        rates = alpha_fair_allocation(problem).rates
        assert rates[0] == pytest.approx(rates[1], rel=1e-3)

    def test_mixed_inelastic_priority(self):
        # CBR voip (demand 4) does not back off; TCP-like flows share what
        # is left of the 10-unit link.
        problem = CapacityProblem(
            demands=np.array([4.0, 100.0, 100.0]),
            usage=np.ones((1, 3)),
            capacities=np.array([10.0]),
            elastic=np.array([False, True, True]),
            alpha=2.0,
        )
        allocation = solve_allocation(problem)
        assert allocation.rates[0] == pytest.approx(4.0)
        assert allocation.rates[1] == pytest.approx(3.0, rel=1e-3)
        assert allocation.rates[2] == pytest.approx(3.0, rel=1e-3)
        assert allocation.bottleneck[0] == -1  # demand-limited

    def test_zero_capacity_pins_elastic_flows(self):
        problem = CapacityProblem(
            demands=np.array([5.0, 5.0]),
            usage=np.array([[1.0, 0.0], [0.0, 1.0]]),
            capacities=np.array([0.0, 10.0]),
            elastic=np.ones(2, dtype=bool),
        )
        allocation = alpha_fair_allocation(problem)
        assert allocation.rates[0] == 0.0
        assert allocation.rates[1] == pytest.approx(5.0)

    def test_mixed_finite_and_infinite_alpha_rejected(self):
        with pytest.raises(WorkloadError, match="alpha"):
            CapacityProblem(
                demands=np.array([1.0, 1.0]),
                usage=np.ones((1, 2)),
                capacities=np.array([1.0]),
                elastic=np.ones(2, dtype=bool),
                alpha=np.array([2.0, math.inf]),
            )

    def test_invalid_elastic_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            CapacityProblem(demands=np.array([1.0]), usage=np.ones((1, 1)),
                            capacities=np.array([1.0]),
                            elastic=np.array([True, False]))
        with pytest.raises(WorkloadError):
            CapacityProblem(demands=np.array([1.0]), usage=np.ones((1, 1)),
                            capacities=np.array([1.0]),
                            weights=np.array([0.0]))
        with pytest.raises(WorkloadError):
            CapacityProblem(demands=np.array([1.0]), usage=np.ones((1, 1)),
                            capacities=np.array([1.0]), alpha=0.0)


class TestElasticWarmStart:
    def test_kkt_certificate_accepts_a_solution(self):
        problem = chain_problem(2.0)
        cold = alpha_fair_allocation(problem)
        attribution = verify_alpha_fair(problem, cold.rates, cold.prices)
        assert attribution is not None
        assert (attribution >= 0).all()  # every flow congested somewhere

    def test_certificate_delegates_at_alpha_inf(self):
        # The max-min limit is solved by delegation; its certificate must
        # delegate too (the KKT closed form is meaningless at 1/alpha = 0).
        problem = chain_problem(math.inf)
        allocation = alpha_fair_allocation(problem)
        attribution = verify_alpha_fair(problem, allocation.rates,
                                        allocation.prices)
        assert attribution is not None
        assert np.array_equal(attribution, allocation.bottleneck)

    def test_warm_start_returns_the_same_answer(self):
        problem = chain_problem(2.0)
        cold = alpha_fair_allocation(problem)
        warm = alpha_fair_allocation(problem, warm_start=cold.rates,
                                     warm_prices=cold.prices)
        assert warm.warm_started and warm.iterations == 0
        assert np.array_equal(warm.rates, cold.rates)

    def test_bad_hints_fall_back_to_the_dual(self):
        problem = chain_problem(2.0)
        cold = alpha_fair_allocation(problem)
        skewed = alpha_fair_allocation(
            problem,
            warm_start=cold.rates * 0.2,
            warm_prices=cold.prices * 50.0,
        )
        assert not skewed.warm_started
        assert np.allclose(skewed.rates, cold.rates, rtol=5e-3)

    def test_stale_hint_rejected_at_bps_scales(self):
        # Regression: the KKT certificate's "priced" threshold must be
        # problem-scaled — at bps-sized demands the equilibrium prices sit
        # near 1e-13, and an absolute floor skipped complementary
        # slackness, certifying a stale warm start after a capacity
        # restoration and leaving an elastic flow 33% under-served.
        def problem(capacity):
            return CapacityProblem(
                demands=np.array([2e5, 3e6]),
                usage=np.array([[1000.0, 0.0], [0.0, 1000.0]]),
                capacities=np.array([2e8, capacity]),
                elastic=np.ones(2, dtype=bool),
                weights=np.array([1000.0, 1000.0]),
                alpha=2.0,
            )
        congested = alpha_fair_allocation(problem(2e9))
        assert congested.rates[1] < 3e6  # genuinely congested
        restored = alpha_fair_allocation(problem(4e9),
                                         warm_start=congested.rates,
                                         warm_prices=congested.prices)
        assert restored.rates[1] == pytest.approx(3e6, rel=1e-3)

    def test_mixed_solve_warm_start_round_trip(self):
        rng = np.random.default_rng(7)
        flows, resources = 30, 6
        problem = CapacityProblem(
            demands=rng.uniform(0.5, 5.0, flows),
            usage=rng.uniform(0, 2.0, (resources, flows)),
            capacities=rng.uniform(5.0, 20.0, resources),
            elastic=rng.random(flows) < 0.5,
            alpha=2.0,
        )
        cold = solve_allocation(problem)
        warm = solve_allocation(problem, warm_start=cold.rates,
                                warm_prices=cold.prices)
        assert warm.warm_started and warm.iterations == 0
        assert np.array_equal(warm.rates, cold.rates)


class TestWarmStart:
    def test_demand_certificate_fires_without_a_hint(self):
        allocation = max_min_allocation(single_bottleneck([3, 4, 5], 100.0))
        assert allocation.iterations == 0
        assert not allocation.warm_started
        assert np.allclose(allocation.rates, [3, 4, 5])

    def test_hint_reuse_returns_the_exact_optimum(self):
        problem = single_bottleneck([2, 10, 10], 10.0)
        cold = max_min_allocation(problem)
        warm = max_min_allocation(problem, warm_start=cold.rates)
        assert warm.warm_started and warm.iterations == 0
        assert np.array_equal(warm.rates, cold.rates)
        assert np.array_equal(warm.bottleneck, cold.bottleneck)

    def test_bad_hints_fall_back_to_the_cold_fill(self):
        problem = single_bottleneck([2, 10, 10], 10.0)
        for hint in (np.array([9.0, 9.0, 9.0]),       # infeasible
                     np.array([1.0, 1.0, 1.0]),        # underfull
                     np.array([1.0, 2.0])):            # wrong shape
            allocation = max_min_allocation(problem, warm_start=hint)
            assert not allocation.warm_started
            assert np.allclose(allocation.rates, [2.0, 4.0, 4.0])
