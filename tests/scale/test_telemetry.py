"""Telemetry: determinism, span-tree discipline, exporters, progress, schema.

The load-bearing property is that telemetry *observes* the simulation and
never participates: enabling a tracer + registry on any campaign must leave
every allocation, epoch record, and campaign output bit-identical to the
untraced run.  The bit-identity tests here pin that down for one campaign
of each experiment (E13–E16) at smoke scale.
"""

import dataclasses
import importlib.util
import json
import re
from pathlib import Path

import pytest

from repro.exceptions import WorkloadError
from repro.scale import (
    AdversaryCampaignRunner,
    LatencyCampaignRunner,
    MetricsRegistry,
    NullTelemetry,
    Span,
    StochasticCampaignRunner,
    Telemetry,
    TimelineCampaignRunner,
    Tracer,
    format_phase_table,
    phase_breakdown,
)
from repro.scale.catalogue import run_scenario
from repro.scale.telemetry import (
    NULL,
    Histogram,
    _escape_label_value,
    _prometheus_name,
)

_CLIENTS = 2_000
_SEED = 21


def _strip_timing(record):
    """A campaign record with its wall-derived fields zeroed for comparison."""
    return dataclasses.replace(record, wall_seconds=0.0, solve_seconds=0.0)


# -- the guarantee: telemetry never changes results --------------------------------


class TestBitIdentity:
    def test_e13_campaign_identical_with_tracing(self):
        scenarios = ["flash_crowd", "regional_outage"]
        plain = TimelineCampaignRunner(
            scenarios=scenarios, clients=_CLIENTS, seed=_SEED).run()
        traced = TimelineCampaignRunner(
            scenarios=scenarios, clients=_CLIENTS, seed=_SEED,
            telemetry=Telemetry()).run()
        assert ([_strip_timing(r) for r in traced.records]
                == [_strip_timing(r) for r in plain.records])

    def test_e14_campaign_identical_with_tracing(self):
        plain = StochasticCampaignRunner(
            clients=_CLIENTS, epochs=16, replicas=3, seed=_SEED).run()
        traced = StochasticCampaignRunner(
            clients=_CLIENTS, epochs=16, replicas=3, seed=_SEED,
            telemetry=Telemetry()).run()
        assert traced.distributions == plain.distributions

    def test_e15_campaign_identical_with_tracing(self):
        plain = LatencyCampaignRunner(
            clients=_CLIENTS, epochs=16, replicas=3, seed=_SEED).run()
        traced = LatencyCampaignRunner(
            clients=_CLIENTS, epochs=16, replicas=3, seed=_SEED,
            telemetry=Telemetry()).run()
        assert traced.distributions == plain.distributions

    def test_e16_campaign_identical_with_tracing(self):
        plain = AdversaryCampaignRunner(
            clients=_CLIENTS, epochs=12, replicas_per_point=1, seed=_SEED).run()
        traced = AdversaryCampaignRunner(
            clients=_CLIENTS, epochs=12, replicas_per_point=1, seed=_SEED,
            telemetry=Telemetry()).run()
        assert traced.points == plain.points

    def test_registry_snapshot_is_deterministic(self):
        """Two identical seeded runs record the exact same work metrics."""
        snapshots = []
        for _ in range(2):
            telemetry = Telemetry()
            StochasticCampaignRunner(
                clients=_CLIENTS, epochs=16, replicas=3, seed=_SEED,
                telemetry=telemetry).run()
            snapshots.append(telemetry.metrics.as_dict())
        assert snapshots[0] == snapshots[1]
        histogram = snapshots[0]["histograms"]["timeline.solver_iterations"]
        assert sum(histogram["counts"]) + histogram["inf"] == histogram["count"]
        assert histogram["count"] == 16 * 3 - snapshots[0]["counters"].get(
            "timeline.epochs_reused", 0)


# -- span trees --------------------------------------------------------------------


class TestSpans:
    def test_campaign_trace_is_well_formed(self):
        telemetry = Telemetry()
        run_scenario("flash_crowd", clients=_CLIENTS, seed=_SEED,
                     telemetry=telemetry)
        tracer = telemetry.tracer
        tracer.assert_well_formed()
        assert tracer.open_spans == []
        names = {record.name for record in tracer.spans}
        assert {"timeline", "epoch", "solve", "ring_remap"} <= names
        assert all(record.start_s >= 0.0 for record in tracer.spans)
        # Every epoch span is a child of the single timeline span.
        (timeline_span,) = tracer.by_name("timeline")
        assert all(record.parent == timeline_span.id
                   for record in tracer.by_name("epoch"))

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = Span("outer", tracer)
        inner = Span("inner", tracer)
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(WorkloadError, match="closed out of order"):
            outer.__exit__(None, None, None)

    def test_open_span_fails_well_formedness(self):
        tracer = Tracer()
        Span("dangling", tracer).__enter__()
        with pytest.raises(WorkloadError, match="open"):
            tracer.assert_well_formed()

    def test_null_telemetry_spans_still_time(self):
        span = NULL.span("anything", attr=1)
        with span:
            sum(range(1000))
        assert span.seconds > 0.0
        assert NULL.tracer is None and NULL.metrics is None
        assert not NullTelemetry().enabled

    def test_null_recording_calls_are_noops(self):
        NULL.inc("x")
        NULL.set_gauge("y", 2.0)
        NULL.observe("z", 1.0)
        assert NULL.counter_value("x") == 0.0


# -- registry + exporters ----------------------------------------------------------


class TestRegistry:
    def test_counters_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(WorkloadError, match="cannot decrease"):
            registry.inc("work", -1.0)

    def test_histogram_edges_are_fixed(self):
        with pytest.raises(WorkloadError, match="sorted"):
            Histogram(edges=(2.0, 1.0))
        registry = MetricsRegistry()
        registry.observe("iters", 3.0, edges=(0.0, 2.0, 4.0))
        with pytest.raises(WorkloadError, match="different bucket edges"):
            registry.observe("iters", 3.0, edges=(0.0, 8.0))

    def test_histogram_bucket_placement(self):
        histogram = Histogram(edges=(0.0, 1.0, 4.0))
        for value in (0.0, 0.5, 1.0, 3.0, 99.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]
        assert histogram.inf_count == 1
        assert histogram.as_dict()["sum"] == pytest.approx(103.5)

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.inc("solver.fill_passes", 3)
        registry.set_gauge("fleet.sites", 4.5)
        registry.observe("timeline.solver_iterations", 3.0,
                         edges=(0.0, 2.0, 4.0))
        registry.observe("timeline.solver_iterations", 9.0,
                         edges=(0.0, 2.0, 4.0))
        text = registry.prometheus_text()
        assert "# TYPE solver_fill_passes counter\nsolver_fill_passes 3" in text
        assert "# TYPE fleet_sites gauge\nfleet_sites 4.5" in text
        # Buckets are cumulative and close with +Inf, _sum, _count.
        assert 'timeline_solver_iterations_bucket{le="4"} 1' in text
        assert 'timeline_solver_iterations_bucket{le="+Inf"} 2' in text
        assert "timeline_solver_iterations_sum 12" in text
        assert "timeline_solver_iterations_count 2" in text

    def test_jsonl_export_round_trips(self, tmp_path):
        telemetry = Telemetry()
        run_scenario("flash_crowd", clients=_CLIENTS, seed=_SEED,
                     telemetry=telemetry)
        path = tmp_path / "trace.jsonl"
        telemetry.tracer.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(telemetry.tracer.spans)
        spans = [json.loads(line) for line in lines]
        assert all({"id", "parent", "name", "start_s", "dur_s"} <= set(span)
                   for span in spans)


# -- strict Prometheus exposition grammar ------------------------------------------
#
# A scraper-grade re-parse of :meth:`MetricsRegistry.prometheus_text`: every
# family must carry ``# HELP`` + ``# TYPE`` in that order, every sample line
# must match the exposition grammar exactly (including label-value escaping),
# and the parsed values must round-trip back to the registry snapshot.

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP (?P<name>{_METRIC_NAME}) (?P<help>[^\n]*)$")
_TYPE_RE = re.compile(rf"^# TYPE (?P<name>{_METRIC_NAME})"
                      r" (?P<kind>counter|gauge|histogram)$")
_LABEL_BODY = r'(?:[^"\\\n]|\\\\|\\"|\\n)*'
_SAMPLE_RE = re.compile(
    rf'^(?P<name>{_METRIC_NAME})'
    rf'(?:\{{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="{_LABEL_BODY}",?)*)\}})?'
    r' (?P<value>[-+]?(?:\d+(?:\.\d+)?(?:[eE][-+]?\d+)?|Inf|NaN))$')
_LABEL_RE = re.compile(
    rf'(?P<label>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>{_LABEL_BODY})"')


def _unescape_label_value(text):
    out, i = [], 0
    while i < len(text):
        if text[i] == "\\":
            out.append({"\\": "\\", '"': '"', "n": "\n"}[text[i + 1]])
            i += 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def parse_prometheus(text):
    """Strictly parse exposition text -> {family: {help, type, samples}}."""
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    current = None
    pending_help = None
    for line in text.splitlines():
        help_match = _HELP_RE.match(line)
        if help_match:
            assert pending_help is None, "HELP not followed by TYPE"
            pending_help = help_match
            continue
        type_match = _TYPE_RE.match(line)
        if type_match:
            assert pending_help is not None, "TYPE without a HELP line"
            assert pending_help["name"] == type_match["name"], \
                "HELP/TYPE name mismatch"
            name = type_match["name"]
            assert name not in families, f"duplicate family {name!r}"
            families[name] = {"help": pending_help["help"],
                              "type": type_match["kind"], "samples": []}
            current, pending_help = name, None
            continue
        assert pending_help is None, "HELP not followed by TYPE"
        sample = _SAMPLE_RE.match(line)
        assert sample is not None, f"unparseable sample line: {line!r}"
        assert current is not None, f"sample before any TYPE: {line!r}"
        name = sample["name"]
        if families[current]["type"] == "histogram":
            assert name in (f"{current}_bucket", f"{current}_sum",
                            f"{current}_count"), \
                f"sample {name!r} outside family {current!r}"
        else:
            assert name == current, \
                f"sample {name!r} outside family {current!r}"
        labels = {}
        if sample["labels"]:
            for match in _LABEL_RE.finditer(sample["labels"]):
                labels[match["label"]] = _unescape_label_value(match["value"])
        key = (name, tuple(sorted(labels.items())))
        seen = {(n, tuple(sorted(ls.items())))
                for n, ls, _ in families[current]["samples"]}
        assert key not in seen, f"duplicate sample {key}"
        families[current]["samples"].append((name, labels,
                                             float(sample["value"])))
    assert pending_help is None, "trailing HELP without TYPE"
    return families


class TestPrometheusStrictRoundTrip:
    @staticmethod
    def build_registry():
        registry = MetricsRegistry()
        registry.inc("solver.fill_passes", 3)
        registry.inc("campaign.cost usd/total", 2.5)  # charset-hostile name
        registry.set_gauge("fleet.sites", 4.5)
        registry.set_gauge("autoscale.error", -1.25)
        for value in (0.0, 0.5, 1.0, 3.0, 99.0):
            registry.observe("timeline.solver_iterations", value,
                             edges=(0.0, 1.0, 4.0))
        return registry

    def test_round_trip_matches_registry_snapshot(self):
        registry = self.build_registry()
        families = parse_prometheus(registry.prometheus_text())
        snapshot = registry.as_dict()
        assert len(families) == 5
        for kind_key, kind in (("counters", "counter"), ("gauges", "gauge")):
            for name, value in snapshot[kind_key].items():
                family = families[_prometheus_name(name)]
                assert family["type"] == kind
                # HELP names the original dotted metric the sanitizer lost.
                assert repr(name) in family["help"]
                ((sample_name, labels, parsed),) = family["samples"]
                assert sample_name == _prometheus_name(name)
                assert labels == {}
                assert parsed == pytest.approx(value)

    def test_histogram_buckets_are_cumulative_and_closed(self):
        registry = self.build_registry()
        families = parse_prometheus(registry.prometheus_text())
        summary = registry.as_dict()["histograms"]["timeline.solver_iterations"]
        family = families["timeline_solver_iterations"]
        assert family["type"] == "histogram"
        buckets = [(labels["le"], value)
                   for name, labels, value in family["samples"]
                   if name.endswith("_bucket")]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)  # cumulative => monotone
        assert buckets[-1][0] == "+Inf"
        assert counts[-1] == summary["count"]
        assert [float(le) for le, _ in buckets[:-1]] == summary["edges"]
        ((total,),) = [[value] for name, _, value in family["samples"]
                       if name.endswith("_sum")]
        assert total == pytest.approx(summary["sum"])
        ((count,),) = [[value] for name, _, value in family["samples"]
                       if name.endswith("_count")]
        assert count == summary["count"]

    def test_label_escaping_round_trips(self):
        raw = 'a"b\nc\\d'
        escaped = _escape_label_value(raw)
        assert escaped == 'a\\"b\\nc\\\\d'
        text = ("# HELP demo histogram 'demo'\n"
                "# TYPE demo histogram\n"
                f'demo_bucket{{le="{escaped}"}} 1\n')
        ((_, labels, _),) = parse_prometheus(text)["demo"]["samples"]
        assert labels["le"] == raw

    def test_parser_rejects_malformed_exposition(self):
        with pytest.raises(AssertionError, match="sample before any TYPE"):
            parse_prometheus("orphan 1\n")
        with pytest.raises(AssertionError, match="HELP not followed"):
            parse_prometheus("# HELP a b\na 1\n")
        with pytest.raises(AssertionError, match="unparseable"):
            parse_prometheus('# HELP a b\n# TYPE a counter\n'
                             'a{x="unterminated} 1\n')
        with pytest.raises(AssertionError, match="outside family"):
            parse_prometheus("# HELP a b\n# TYPE a counter\nother 1\n")


# -- the perf-report surface -------------------------------------------------------


class TestPhaseBreakdown:
    def test_breakdown_sorted_by_total(self):
        telemetry = Telemetry()
        run_scenario("flash_crowd", clients=_CLIENTS, seed=_SEED,
                     telemetry=telemetry)
        phases = phase_breakdown(telemetry)
        assert "epoch" in phases and "solve" in phases
        totals = [row["total_s"] for row in phases.values()]
        assert totals == sorted(totals, reverse=True)
        for row in phases.values():
            assert row["count"] > 0
            assert 0.0 <= row["p50_s"] <= row["p95_s"] <= row["max_s"] + 1e-12
        table = format_phase_table(phases, title="smoke")
        assert "smoke" in table and "epoch" in table

    def test_breakdown_needs_a_tracer(self):
        with pytest.raises(WorkloadError, match="tracing"):
            phase_breakdown(Telemetry(trace=False))
        assert "(no phases recorded)" in format_phase_table({})


# -- progress from counters (the stale-window fix) ---------------------------------


class TestProgress:
    def test_progress_tracks_replica_counter(self):
        runner = StochasticCampaignRunner(
            clients=_CLIENTS, epochs=8, replicas=3, seed=_SEED)
        assert runner.get_current_state().completed_points == 0
        runner.run()
        state = runner.get_current_state()
        assert state.completed_points == state.total_points == 3
        assert runner.telemetry.counter_value("campaign.replicas_completed") == 3

    def test_second_run_does_not_double_count(self):
        runner = StochasticCampaignRunner(
            clients=_CLIENTS, epochs=8, replicas=3, seed=_SEED)
        runner.run()
        runner.run()
        # The counter keeps climbing across runs (it is cumulative), but the
        # progress snapshot is re-based at each run() start.
        assert runner.telemetry.counter_value("campaign.replicas_completed") == 6
        assert runner.get_current_state().completed_points == 3

    def test_progress_survives_metrics_less_telemetry(self):
        runner = TimelineCampaignRunner(
            scenarios=["flash_crowd"], clients=_CLIENTS, seed=_SEED,
            telemetry=Telemetry(trace=False, metrics=False))
        runner.run()
        state = runner.get_current_state()
        assert state.completed_points == state.total_points == 1


# -- the shared BENCH_*.json schema check ------------------------------------------


def _bench_conftest():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "conftest.py"
    spec = importlib.util.spec_from_file_location("bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _artifact():
    return {
        "machine_info": {"cpu": {}},
        "datetime": "2026-08-08T12:00:00",
        "benchmarks": [{
            "name": "test_bench",
            "stats": {"data": [0.1, 0.2], "min": 0.1, "mean": 0.15, "max": 0.2},
            "extra_info": {"phases": {"solve": {
                "count": 2, "total_s": 0.3,
                "p50_s": 0.1, "p95_s": 0.2, "max_s": 0.2,
            }}},
        }],
    }


class TestBenchArtifactSchema:
    def test_well_formed_artifact_passes(self):
        assert _bench_conftest().check_bench_artifact(_artifact()) == []

    def test_missing_top_level_key_fails(self):
        artifact = _artifact()
        del artifact["machine_info"]
        problems = _bench_conftest().check_bench_artifact(artifact)
        assert any("machine_info" in problem for problem in problems)

    def test_empty_timing_data_fails(self):
        artifact = _artifact()
        artifact["benchmarks"][0]["stats"]["data"] = []
        problems = _bench_conftest().check_bench_artifact(artifact)
        assert any("empty timing data" in problem for problem in problems)

    def test_unordered_stats_fail(self):
        artifact = _artifact()
        artifact["benchmarks"][0]["stats"]["mean"] = 0.5
        problems = _bench_conftest().check_bench_artifact(artifact)
        assert any("out of order" in problem for problem in problems)

    def test_unparseable_datetime_fails(self):
        artifact = _artifact()
        artifact["datetime"] = "not-a-timestamp"
        problems = _bench_conftest().check_bench_artifact(artifact)
        assert any("datetime" in problem for problem in problems)

    def test_incoherent_phase_rows_fail(self):
        artifact = _artifact()
        phases = artifact["benchmarks"][0]["extra_info"]["phases"]
        phases["solve"]["p50_s"] = 0.9
        problems = _bench_conftest().check_bench_artifact(artifact)
        assert any("percentiles" in problem for problem in problems)
        phases["solve"] = {"count": 0, "total_s": 0.0,
                           "p50_s": 0.0, "p95_s": 0.0, "max_s": 0.0}
        problems = _bench_conftest().check_bench_artifact(artifact)
        assert any("count" in problem for problem in problems)

    def test_phases_are_optional_but_not_empty(self):
        artifact = _artifact()
        del artifact["benchmarks"][0]["extra_info"]
        assert _bench_conftest().check_bench_artifact(artifact) == []
        artifact["benchmarks"][0]["extra_info"] = {"phases": {}}
        problems = _bench_conftest().check_bench_artifact(artifact)
        assert any("empty" in problem for problem in problems)


# -- overhead ----------------------------------------------------------------------


def test_tracing_overhead_is_modest():
    """The strict 5% guard lives in bench_timeline at the acceptance scale;
    this smoke-scale bound just catches pathological regressions (e.g. an
    accidental O(spans^2) tracer) without flaking on scheduler noise."""
    plain = run_scenario("flash_crowd", clients=_CLIENTS, seed=_SEED)
    traced = run_scenario("flash_crowd", clients=_CLIENTS, seed=_SEED,
                          telemetry=Telemetry())
    assert traced.wall_seconds <= plain.wall_seconds * 3.0 + 0.2
