"""Timeline properties: conservation, warm-start equivalence, failover churn."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.scale import (
    CapacityDegradation,
    ClientPopulation,
    CompositeLoad,
    ConstantLoad,
    DiscriminationToggle,
    DiurnalLoad,
    FlashCrowdLoad,
    FluidTimeline,
    LinearRampLoad,
    NeutralizerFleet,
    SiteFailure,
    SiteRecovery,
)
from repro.units import mbps


def small_timeline(clients=10_000, sites=5, *, epochs=12, seed=31, **kwargs):
    population = ClientPopulation(clients, seed=seed)
    fleet = NeutralizerFleet.build(sites, cores=0.5, uplink_bps=mbps(700))
    return FluidTimeline(population, fleet, epochs=epochs, **kwargs)


class TestLoadCurves:
    def test_constant(self):
        assert (ConstantLoad(0.7).multipliers(0.0, 4) == 0.7).all()

    def test_diurnal_bounds_and_period(self):
        curve = DiurnalLoad(trough=0.3, peak=1.2, timezone_spread=0.0)
        samples = np.array([curve.multipliers(t, 1)[0]
                            for t in np.linspace(0, 86_400, 97)])
        assert samples.min() == pytest.approx(0.3, abs=1e-6)
        assert samples.max() == pytest.approx(1.2, abs=1e-6)
        # Periodicity: one full day later the multiplier repeats.
        assert curve.multipliers(3_600.0, 3) == pytest.approx(
            curve.multipliers(3_600.0 + 86_400.0, 3)
        )

    def test_diurnal_timezone_spread_staggers_regions(self):
        curve = DiurnalLoad(timezone_spread=0.25)
        values = curve.multipliers(0.0, 8)
        assert len(set(np.round(values, 9))) > 1

    def test_flash_crowd_shape(self):
        curve = FlashCrowdLoad(base=1.0, spike=5.0, start_seconds=100.0,
                               ramp_seconds=100.0, hold_seconds=200.0,
                               regions_hit=(1,))
        assert curve.multipliers(0.0, 3)[1] == pytest.approx(1.0)
        assert curve.multipliers(200.0, 3)[1] == pytest.approx(5.0)  # peak
        assert curve.multipliers(350.0, 3)[1] == pytest.approx(5.0)  # holding
        assert curve.multipliers(1_000.0, 3)[1] == pytest.approx(1.0)  # decayed
        # Untouched regions stay at base throughout.
        assert curve.multipliers(200.0, 3)[0] == pytest.approx(1.0)

    def test_ramp_clamps_outside_window(self):
        curve = LinearRampLoad(start_level=1.0, end_level=3.0,
                               t0_seconds=0.0, t1_seconds=100.0)
        assert curve.multipliers(-50.0, 2)[0] == pytest.approx(1.0)
        assert curve.multipliers(50.0, 2)[0] == pytest.approx(2.0)
        assert curve.multipliers(500.0, 2)[0] == pytest.approx(3.0)

    def test_composite_multiplies(self):
        combined = ConstantLoad(2.0) * ConstantLoad(0.5)
        assert isinstance(combined, CompositeLoad)
        assert combined.multipliers(0.0, 3) == pytest.approx([1.0, 1.0, 1.0])

    def test_invalid_curves_rejected(self):
        with pytest.raises(WorkloadError):
            ConstantLoad(-1.0)
        with pytest.raises(WorkloadError):
            DiurnalLoad(trough=2.0, peak=1.0)
        with pytest.raises(WorkloadError):
            FlashCrowdLoad(spike=0.5)
        with pytest.raises(WorkloadError):
            LinearRampLoad(t0_seconds=10.0, t1_seconds=10.0)


class TestConservation:
    """Property: no epoch ever delivers more than is offered or is feasible."""

    @pytest.mark.parametrize("load", [
        ConstantLoad(1.0),
        DiurnalLoad(trough=0.3, peak=1.3),
        FlashCrowdLoad(base=0.8, spike=8.0, start_seconds=3 * 3600.0,
                       ramp_seconds=3600.0, hold_seconds=2 * 3600.0),
        LinearRampLoad(start_level=0.5, end_level=2.5, t0_seconds=0.0,
                       t1_seconds=12 * 3600.0),
    ])
    def test_goodput_never_exceeds_demand(self, load):
        result = small_timeline(load=load).run()
        assert (result.goodput_bps <= result.demand_bps * (1 + 1e-9)).all()
        assert (result.delivered_fraction <= 1 + 1e-9).all()
        assert (result.cpu_utilization <= 1 + 1e-6).all()
        assert (result.uplink_utilization <= 1 + 1e-6).all()

    def test_every_epoch_accounts_every_client(self):
        result = small_timeline(
            events=[SiteFailure(4, "site01"), SiteRecovery(8, "site01")]
        ).run()
        assert (result.clients_per_site.sum(axis=1) == result.n_clients).all()

    def test_payload_nbytes_tracks_the_epoch_matrices(self):
        result = small_timeline(epochs=6).run()
        expected = (result.cpu_utilization.nbytes
                    + result.uplink_utilization.nbytes
                    + result.clients_per_site.nbytes)
        assert result.payload_nbytes == expected > 0
        # Grows with the timeline: double the epochs, double the payload a
        # campaign unit ships back from its worker process.
        longer = small_timeline(epochs=12).run()
        assert longer.payload_nbytes == 2 * result.payload_nbytes

    def test_capacity_loss_is_monotone_non_increasing(self):
        # Identical demand, progressively degraded fleet: goodput can only fall.
        goodputs = []
        for factor in (1.0, 0.6, 0.3, 0.1):
            events = [] if factor == 1.0 else [
                CapacityDegradation(0, site=f"site{i:02d}", factor=factor)
                for i in range(5)
            ]
            result = small_timeline(epochs=2, events=events).run()
            goodputs.append(result.records[-1].goodput_bps)
        assert all(a >= b - 1e-6 for a, b in zip(goodputs, goodputs[1:]))
        assert goodputs[0] > goodputs[-1]

    def test_degradation_window_restores_capacity(self):
        result = small_timeline(
            epochs=9,
            events=[CapacityDegradation(3, site="site00", factor=0.2, until_epoch=6)],
        ).run()
        before, during, after = (result.records[2], result.records[4],
                                 result.records[7])
        assert during.goodput_bps <= before.goodput_bps + 1e-6
        assert after.goodput_bps == pytest.approx(before.goodput_bps, rel=1e-9)


class TestFailover:
    def test_failed_then_recovered_site_gets_exactly_its_old_clients(self):
        population = ClientPopulation(15_000, seed=5)
        fleet = NeutralizerFleet.build(6, cores=0.5, uplink_bps=mbps(700))
        before = fleet.assign_sites(population.ring_positions).copy()
        timeline = FluidTimeline(
            population, fleet, epochs=10,
            events=[SiteFailure(3, "site02"), SiteRecovery(7, "site02")],
        )
        result = timeline.run()
        after = fleet.assign_sites(population.ring_positions)
        # The ring's contract, observed through a whole timeline: recovery
        # hands back exactly the pre-failure assignment.
        assert np.array_equal(before, after)
        # During the outage the failed site is empty and only its clients moved.
        failed_count = int((before == 2).sum())
        assert (result.clients_per_site[3:7, 2] == 0).all()
        assert result.records[3].clients_remapped == failed_count
        assert result.records[7].clients_remapped == failed_count
        assert result.records[3].ring_moved_fraction > 0
        # Off-event epochs have zero churn.
        for epoch in (1, 2, 5, 9):
            assert result.records[epoch].clients_remapped == 0
            assert result.records[epoch].ring_moved_fraction == 0.0

    def test_remap_churn_matches_ring_diff_scale(self):
        result = small_timeline(
            clients=20_000, events=[SiteFailure(5, "site03")]
        ).run()
        record = result.records[5]
        # Clients are hashed uniformly, so the moved-client share tracks the
        # moved hash-space share (loose bound: within a factor of two).
        moved_share = record.clients_remapped / result.n_clients
        assert record.ring_moved_fraction > 0
        assert 0.5 < moved_share / record.ring_moved_fraction < 2.0


class TestWarmStart:
    @staticmethod
    def congested_timeline(*, epochs=12, seed=11, warm_start=True, events=()):
        """Steady congested load: the regime where hint reuse fires."""
        from repro.scale import provisioned_fleet

        population = ClientPopulation(12_000, seed=seed)
        fleet = provisioned_fleet(population, 5, headroom=0.8)
        return FluidTimeline(population, fleet, epochs=epochs,
                             load=ConstantLoad(1.0), events=events,
                             warm_start=warm_start)

    def test_warm_and_cold_timelines_agree_exactly_enough(self):
        def build(warm):
            return small_timeline(
                clients=12_000, seed=11,
                load=DiurnalLoad(trough=0.3, peak=1.4),
                events=[SiteFailure(6, "site00"), SiteRecovery(9, "site00")],
                warm_start=warm,
            )
        warm = build(True).run()
        cold = build(False).run()
        assert np.allclose(warm.goodput_bps, cold.goodput_bps, rtol=1e-6)
        assert np.allclose(warm.delivered_fraction, cold.delivered_fraction,
                           rtol=1e-6)
        # The demand certificate is mode-independent, so quiet epochs skip
        # the fill in both runs.
        assert warm.fast_fraction > 0.3
        assert cold.warm_fraction == 0.0

    def test_steady_congestion_reuses_the_previous_allocation(self):
        warm = self.congested_timeline(warm_start=True).run()
        cold = self.congested_timeline(warm_start=False).run()
        # Every epoch after the first certifies the previous allocation.
        assert warm.warm_fraction == pytest.approx(11 / 12)
        assert all(record.solver_iterations == 0
                   for record in warm.records if record.warm_started)
        assert cold.warm_fraction == 0.0
        assert np.allclose(warm.goodput_bps, cold.goodput_bps, rtol=1e-6)
        # Congested epochs can't use the demand certificate, so the cold run
        # really refills each one.
        assert all(record.solver_iterations > 0 for record in cold.records)

    def test_uncongested_epochs_use_the_demand_certificate_in_any_mode(self):
        for warm_start in (True, False):
            result = small_timeline(load=ConstantLoad(0.5),
                                    warm_start=warm_start).run()
            assert all(record.solver_iterations == 0 for record in result.records)
            assert result.fast_fraction == 1.0
            if warm_start:
                # Steady bit-identical epochs reuse the previous allocation
                # outright (same problem, same answer) — every epoch after
                # the first counts as warm.
                assert result.warm_fraction == pytest.approx(11 / 12)
            else:
                assert result.warm_fraction == 0.0  # demands cert only

    def test_event_epoch_falls_back_to_cold(self):
        result = self.congested_timeline(
            events=[SiteFailure(4, "site01")]
        ).run()
        assert result.records[3].warm_started
        # The remap changes the flow structure: the stale hint is discarded.
        assert not result.records[4].warm_started
        assert result.records[4].solver_iterations > 0


class TestDiscrimination:
    def test_throttle_cuts_delivery_and_repeal_restores_it(self):
        result = small_timeline(
            clients=20_000, epochs=9,
            events=[DiscriminationToggle(3, region=0, factor=0.1,
                                         until_epoch=6)],
        ).run()
        before, during, after = (result.records[2], result.records[4],
                                 result.records[7])
        assert during.delivered_fraction < before.delivered_fraction
        assert after.delivered_fraction == pytest.approx(
            before.delivered_fraction, rel=1e-9
        )
        # Offered demand is unchanged by the throttle: the ISP drops traffic,
        # clients do not stop wanting it.
        assert during.demand_bps == pytest.approx(before.demand_bps, rel=1e-9)

    def test_class_scoped_throttle_spares_other_classes(self):
        result = small_timeline(
            clients=20_000, epochs=4,
            events=[DiscriminationToggle(1, region=0, factor=0.0,
                                         class_names=("video",))],
        ).run()
        before, during = result.records[0], result.records[2]
        assert during.goodput_bps_by_class["video"] < before.goodput_bps_by_class["video"]
        assert during.goodput_bps_by_class["voip"] == pytest.approx(
            before.goodput_bps_by_class["voip"], rel=1e-6
        )


class TestValidation:
    def test_bad_timeline_parameters_rejected(self):
        population = ClientPopulation(1_000, seed=1)
        fleet = NeutralizerFleet.build(2)
        with pytest.raises(WorkloadError):
            FluidTimeline(population, fleet, epochs=0)
        with pytest.raises(WorkloadError):
            FluidTimeline(population, fleet, epochs=4, epoch_seconds=0.0)

    def test_event_beyond_horizon_rejected(self):
        with pytest.raises(WorkloadError, match="horizon"):
            small_timeline(epochs=4, events=[SiteFailure(9, "site00")])

    def test_unknown_site_rejected(self):
        with pytest.raises(WorkloadError, match="unknown site"):
            small_timeline(events=[SiteFailure(1, "nope")])

    def test_unknown_region_and_class_rejected(self):
        with pytest.raises(WorkloadError, match="region"):
            small_timeline(events=[DiscriminationToggle(1, region=99)])
        with pytest.raises(WorkloadError, match="classes"):
            small_timeline(events=[DiscriminationToggle(
                1, region=0, class_names=("carrier-pigeon",))])

    def test_bad_events_rejected(self):
        with pytest.raises(WorkloadError):
            CapacityDegradation(4, site="site00", factor=1.5)
        with pytest.raises(WorkloadError):
            CapacityDegradation(4, site="site00", factor=0.5, until_epoch=3)
        with pytest.raises(WorkloadError):
            DiscriminationToggle(-1, region=0)

    def test_determinism(self):
        first = small_timeline(load=DiurnalLoad(), seed=13).run()
        second = small_timeline(load=DiurnalLoad(), seed=13).run()
        assert np.array_equal(first.goodput_bps, second.goodput_bps)
        assert np.array_equal(first.clients_per_site, second.clients_per_site)

    def test_rerun_after_unrecovered_failure_is_identical(self):
        # run() must restore fleet health, so a timeline whose events leave a
        # site down can be re-run (benchmark-style) without drifting.
        timeline = small_timeline(events=[SiteFailure(4, "site01")])
        first = timeline.run()
        assert timeline.fleet.site("site01").healthy
        second = timeline.run()
        assert np.array_equal(first.goodput_bps, second.goodput_bps)
        assert np.array_equal(first.clients_per_site, second.clients_per_site)

    def test_flash_crowd_hitting_missing_region_fails_loudly(self):
        timeline = small_timeline(
            load=FlashCrowdLoad(spike=4.0, regions_hit=(99,))
        )
        with pytest.raises(WorkloadError, match="region"):
            timeline.run()
        with pytest.raises(WorkloadError):
            FlashCrowdLoad(regions_hit=(-1,))
