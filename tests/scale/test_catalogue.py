"""The scenario catalogue and the E13 campaign runner."""

import numpy as np
import pytest

from repro.analysis.experiments import run_timeline_catalogue
from repro.exceptions import WorkloadError
from repro.scale import (
    CATALOGUE,
    ClientPopulation,
    TimelineCampaignRunner,
    build_scenario,
    nominal_demand,
    provisioned_fleet,
    run_scenario,
    scenario_names,
)

SMOKE_CLIENTS = 2_000


class TestProvisioning:
    def test_fleet_carries_headroom_times_nominal(self):
        population = ClientPopulation(5_000, seed=2)
        total_bps, total_pps = nominal_demand(population)
        fleet = provisioned_fleet(population, 8, headroom=1.5)
        assert sum(site.uplink_bps for site in fleet.sites) == pytest.approx(
            total_bps * 1.5
        )
        cost = fleet.cost_model.data_packet_cost_seconds
        assert sum(site.cores for site in fleet.sites) == pytest.approx(
            total_pps * cost * 1.5
        )

    def test_heterogeneous_split_is_three_to_one(self):
        population = ClientPopulation(5_000, seed=2)
        fleet = provisioned_fleet(population, 8, heterogeneous=True)
        cores = [site.cores for site in fleet.sites]
        assert cores[0] == pytest.approx(3 * cores[-1])

    def test_provisioning_scales_with_population(self):
        small = provisioned_fleet(ClientPopulation(1_000, seed=2), 4)
        large = provisioned_fleet(ClientPopulation(100_000, seed=2), 4)
        assert large.sites[0].uplink_bps > 50 * small.sites[0].uplink_bps

    def test_invalid_provisioning_rejected(self):
        population = ClientPopulation(1_000, seed=2)
        with pytest.raises(WorkloadError):
            provisioned_fleet(population, 0)
        with pytest.raises(WorkloadError):
            provisioned_fleet(population, 4, headroom=0.0)


class TestCatalogue:
    def test_catalogue_has_the_promised_scenarios(self):
        names = scenario_names()
        assert len(names) >= 6
        for expected in ("flash_crowd", "regional_outage", "diurnal_week",
                         "heterogeneous_fleet", "cascading_overload",
                         "discrimination_rollout"):
            assert expected in names
        for spec in CATALOGUE.values():
            assert spec.title and spec.description

    @pytest.mark.parametrize("name", scenario_names())
    def test_every_scenario_runs_and_conserves(self, name):
        result = run_scenario(name, clients=SMOKE_CLIENTS, seed=7)
        assert result.epochs > 0
        assert (result.goodput_bps <= result.demand_bps * (1 + 1e-9)).all()
        assert (result.cpu_utilization <= 1 + 1e-6).all()
        assert (result.uplink_utilization <= 1 + 1e-6).all()
        assert (result.clients_per_site.sum(axis=1) == SMOKE_CLIENTS).all()

    def test_flash_crowd_actually_congests(self):
        result = run_scenario("flash_crowd", clients=SMOKE_CLIENTS, seed=7)
        assert result.min_delivered_fraction < 0.9
        assert result.records[0].delivered_fraction == pytest.approx(1.0)

    def test_regional_outage_churns_and_recovers(self):
        result = run_scenario("regional_outage", clients=SMOKE_CLIENTS, seed=7)
        assert result.total_clients_remapped > 0
        assert result.peak_remap_epoch in (8, 20)
        assert result.records[-1].delivered_fraction == pytest.approx(
            result.records[0].delivered_fraction, rel=1e-6
        )

    def test_diurnal_week_mostly_skips_the_fill(self):
        result = run_scenario("diurnal_week", clients=SMOKE_CLIENTS, seed=7)
        assert result.fast_fraction > 0.5

    def test_discrimination_rollout_harms_then_repeals(self):
        result = run_scenario("discrimination_rollout", clients=SMOKE_CLIENTS, seed=7)
        assert result.min_delivered_fraction < 0.8
        assert result.records[-1].delivered_fraction == pytest.approx(1.0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(WorkloadError, match="unknown scenario"):
            build_scenario("black_swan")

    def test_deterministic_from_seed(self):
        first = run_scenario("cascading_overload", clients=SMOKE_CLIENTS, seed=5)
        second = run_scenario("cascading_overload", clients=SMOKE_CLIENTS, seed=5)
        assert np.array_equal(first.goodput_bps, second.goodput_bps)


class TestCampaignRunner:
    def test_campaign_over_subset(self):
        runner = TimelineCampaignRunner(
            scenarios=("flash_crowd", "regional_outage"),
            clients=SMOKE_CLIENTS, seed=7,
        )
        assert not runner.get_current_state().done
        result = runner.run()
        assert runner.get_current_state().done
        assert [record.scenario for record in result.records] == [
            "flash_crowd", "regional_outage"]
        assert set(result.timelines) == {"flash_crowd", "regional_outage"}
        assert result.report.experiment_id == "E13"
        assert "flagship timeline" in result.report.render()
        assert result.worst_scenario.scenario == "flash_crowd"

    def test_empty_campaign_rejected(self):
        with pytest.raises(WorkloadError):
            TimelineCampaignRunner(scenarios=())

    def test_typoed_names_fail_fast_at_construction(self):
        with pytest.raises(WorkloadError, match="unknown scenario"):
            TimelineCampaignRunner(scenarios=("flash_crowd", "diurnal_weak"))
        with pytest.raises(WorkloadError, match="flagship"):
            TimelineCampaignRunner(flagship="flashcrowd")

    def test_shared_population_matches_per_scenario_build(self):
        shared = ClientPopulation(SMOKE_CLIENTS, seed=7)
        with_shared = run_scenario("flash_crowd", clients=SMOKE_CLIENTS,
                                   seed=7, population=shared)
        without = run_scenario("flash_crowd", clients=SMOKE_CLIENTS, seed=7)
        assert np.array_equal(with_shared.goodput_bps, without.goodput_bps)

    def test_e13_wrapper(self):
        result = run_timeline_catalogue(
            clients=SMOKE_CLIENTS, seed=7,
            scenarios=("discrimination_rollout",),
        )
        assert result.all_conserved
        rendered = result.report.render()
        assert "E13" in rendered and "discrimination_rollout" in rendered
