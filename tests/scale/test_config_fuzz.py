"""Property fuzz of the operator control plane.

Hypothesis drives random operator-action sequences against a small live
timeline and checks the transactional contract the control plane promises:

- an *invalid* transaction (schema violation or non-whitelisted field) is
  rejected and leaves the timeline bit-identical (``canonical_result_bytes``)
  to never having opened it;
- commit -> rollback -> commit of the same edits converges on a
  bit-identical run, and the rollback itself restores the baseline bytes;
- a committed no-op (or cosmetic-only) transaction is bit-identical to no
  transaction at all.

``derandomize=True`` pins the example stream, so CI failures reproduce
locally from the same seed.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scale.adversary import AdoptionModel, AdversaryGame, IspStrategy
from repro.scale.autoscale import (
    Autoscaler,
    PredictiveLoadPolicy,
    StepPolicy,
    TargetUtilizationPolicy,
)
from repro.scale.config import (
    ConfigError,
    ConfigTransaction,
    FleetSpec,
    PopulationSpec,
    ScenarioConfig,
)
from repro.scale.parallel import canonical_result_bytes
from repro.scale.timeline import DiurnalLoad

CLIENTS = 240
SEED = 17
EPOCHS = 6

FUZZ_SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

CONFIG = ScenarioConfig(
    name="fuzz",
    population=PopulationSpec(regions=4),
    fleet=FleetSpec(mode="elastic", max_sites=6, nominal_sites=4,
                    at_utilization=0.6),
    epochs=EPOCHS,
    epoch_seconds=600.0,
    load=DiurnalLoad(trough=0.4, peak=1.2),
    autoscaler=Autoscaler(TargetUtilizationPolicy(target=0.6),
                          min_sites=2, warmup_epochs=1),
    adversary=AdversaryGame(
        isp=IspStrategy(aggressiveness=0.7, allow_blanket=False),
        adoption=AdoptionModel(sensitivity=6.0),
    ),
)

SITE_NAMES = [f"site{index:02d}" for index in range(6)]


def fresh_timeline():
    return CONFIG.build(clients=CLIENTS, seed=SEED)


@pytest.fixture(scope="module")
def baseline_bytes():
    return canonical_result_bytes(fresh_timeline().run())


# -- action strategies ---------------------------------------------------------------

policies = st.sampled_from([
    TargetUtilizationPolicy(target=0.55),
    StepPolicy(high=0.9, low=0.3, step=1),
    PredictiveLoadPolicy(target=0.6, lead_epochs=1, deadband=0.05),
])

valid_actions = st.one_of(
    st.tuples(st.just("autoscaler.min_sites"), st.integers(1, 4)),
    st.tuples(st.just("autoscaler.max_sites"), st.integers(4, 6)),
    st.tuples(st.just("autoscaler.policy"), policies),
    st.tuples(st.just("fleet.active_sites"),
              st.lists(st.sampled_from(SITE_NAMES), min_size=1, max_size=6,
                       unique=True).map(sorted)),
    st.tuples(st.just("adversary.adoption.sensitivity"),
              st.floats(1.0, 20.0, allow_nan=False)),
    st.tuples(st.just("title"), st.text(max_size=12)),
)

invalid_actions = st.one_of(
    # outside the live-reconfigurable whitelist (every draw differs from the
    # base document's value, so the diff is never empty)
    st.tuples(st.just("epochs"), st.integers(EPOCHS + 1, 40)),
    st.tuples(st.just("epoch_seconds"), st.floats(601.0, 7200.0)),
    st.tuples(st.just("fleet.nominal_sites"), st.sampled_from([1, 2, 3, 5, 6])),
    st.tuples(st.just("population.regions"), st.integers(5, 12)),
    st.tuples(st.just("latency_slo_seconds"), st.floats(0.2, 1.0)),
    st.tuples(st.just("adversary.isp.aggressiveness"),
              st.floats(0.1, 0.5)),
    # schema violations
    st.tuples(st.just("autoscaler.min_sites"), st.just(-3)),
    st.tuples(st.just("autoscaler.min_sites"), st.just("two")),
    st.tuples(st.just("adversary.adoption.sensitivity"), st.just(-1.0)),
    st.tuples(st.just("fleet.active_sites"), st.just(["siteXX"])),
    st.tuples(st.just("fleet.active_sites"), st.just([])),
    st.tuples(st.just("schema_version"), st.just(99)),
)

at_epochs = st.integers(0, EPOCHS - 1)


def apply_actions(txn, actions):
    for path, value in actions:
        txn.set(path, value)


@settings(max_examples=75, **FUZZ_SETTINGS)
@given(
    valid=st.lists(valid_actions, max_size=2),
    invalid=st.lists(invalid_actions, min_size=1, max_size=3),
    at_epoch=at_epochs,
)
def test_rejected_transaction_leaves_timeline_bit_identical(
        baseline_bytes, valid, invalid, at_epoch):
    timeline = fresh_timeline()
    txn = ConfigTransaction(timeline, at_epoch=at_epoch)
    apply_actions(txn, valid)
    apply_actions(txn, invalid)
    with pytest.raises(ConfigError):
        txn.commit()
    assert timeline.config == CONFIG
    assert canonical_result_bytes(timeline.run()) == baseline_bytes
    # ... and rolling the rejected transaction back changes nothing either
    txn.rollback()
    assert canonical_result_bytes(timeline.run()) == baseline_bytes


@settings(max_examples=75, **FUZZ_SETTINGS)
@given(
    actions=st.lists(valid_actions, min_size=1, max_size=4),
    at_epoch=at_epochs,
)
def test_commit_rollback_commit_converges(baseline_bytes, actions, at_epoch):
    timeline = fresh_timeline()
    txn = ConfigTransaction(timeline, at_epoch=at_epoch)
    apply_actions(txn, actions)
    first_changes = txn.commit()
    first = canonical_result_bytes(timeline.run())

    txn.rollback()
    assert timeline.config == CONFIG
    assert canonical_result_bytes(timeline.run()) == baseline_bytes

    apply_actions(txn, actions)
    assert txn.commit() == first_changes
    assert canonical_result_bytes(timeline.run()) == first


@settings(max_examples=75, **FUZZ_SETTINGS)
@given(
    title=st.one_of(st.none(), st.text(max_size=16)),
    at_epoch=at_epochs,
)
def test_noop_commit_is_bit_identical(baseline_bytes, title, at_epoch):
    timeline = fresh_timeline()
    txn = ConfigTransaction(timeline, at_epoch=at_epoch)
    if title is not None:
        txn.set("title", title)
    changes = txn.commit()
    assert tuple(timeline.events) == ()
    if title is None or title == CONFIG.title:
        assert changes == ()
    assert canonical_result_bytes(timeline.run()) == baseline_bytes
