"""Population vectors, demand classes, and consistent-hash fleet assignment."""

import numpy as np
import pytest

from repro.exceptions import TopologyError, WorkloadError
from repro.scale import (
    ClientPopulation,
    CryptoCostModel,
    DemandClass,
    FleetSite,
    NeutralizerFleet,
    PopulationMix,
    default_mix,
    voip_class,
)
from repro.scale.population import neutralized_wire_bytes


class TestDemandClasses:
    def test_voip_class_matches_apps_codec(self):
        voip = voip_class()
        # 20 ms frames → 50 packets/s, 160-byte payload plus wire overhead.
        assert voip.packets_per_second == pytest.approx(50.0)
        assert voip.packet_bytes == neutralized_wire_bytes(160)

    def test_wire_overhead_exceeds_plain_udp(self):
        # The shim adds the epoch/nonce/address/tag fields on top of IP+UDP.
        assert neutralized_wire_bytes(100) > 20 + 8 + 100

    def test_invalid_class_rejected(self):
        with pytest.raises(WorkloadError):
            DemandClass(name="bad", packets_per_second=0.0, packet_bytes=100)
        with pytest.raises(WorkloadError):
            DemandClass(name="bad", packets_per_second=1.0, packet_bytes=100, duty_cycle=1.5)

    def test_mix_fractions_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            PopulationMix(classes=(voip_class(),), fractions=(0.5,))


class TestPopulation:
    def test_deterministic_from_seed(self):
        one = ClientPopulation(5_000, seed=42)
        two = ClientPopulation(5_000, seed=42)
        assert np.array_equal(one.class_index, two.class_index)
        assert np.array_equal(one.region_index, two.region_index)
        assert np.array_equal(one.ring_positions, two.ring_positions)
        other = ClientPopulation(5_000, seed=43)
        assert not np.array_equal(one.class_index, other.class_index)

    def test_mix_fractions_respected(self):
        population = ClientPopulation(50_000, seed=1)
        fractions = population.class_counts() / population.n_clients
        for measured, expected in zip(fractions, default_mix().fractions):
            assert measured == pytest.approx(expected, abs=0.02)

    def test_group_counts_cover_every_client(self):
        population = ClientPopulation(10_000, regions=4, seed=9)
        fleet = NeutralizerFleet.build(5)
        sites = fleet.assign_sites(population.ring_positions)
        counts = population.group_counts(sites, fleet.n_sites)
        assert counts.shape == (4, population.n_classes, 5)
        assert counts.sum() == population.n_clients

    def test_empty_population_rejected(self):
        with pytest.raises(WorkloadError):
            ClientPopulation(0)


class TestFleet:
    def test_assignment_matches_scalar_ring_lookup(self):
        fleet = NeutralizerFleet.build(4)
        population = ClientPopulation(300, seed=3)
        assigned = fleet.assign_sites(population.ring_positions)
        for position, site_index in zip(population.ring_positions[:50], assigned[:50]):
            expected = fleet.ring.site_for(int(position).to_bytes(8, "big"))
            # site_for hashes its key; compare via the ring table instead.
            positions, owners = fleet.ring.table()
            slot = np.searchsorted(np.asarray(positions, dtype=np.uint64), position)
            if slot == len(positions):
                slot = 0
            assert fleet.sites[site_index].name == owners[slot]
            assert expected in [site.name for site in fleet.sites]

    def test_assignment_is_roughly_balanced(self):
        fleet = NeutralizerFleet.build(8, replicas=128)
        population = ClientPopulation(80_000, seed=11)
        counts = np.bincount(fleet.assign_sites(population.ring_positions), minlength=8)
        assert counts.min() > 0.4 * counts.mean()
        assert counts.max() < 2.0 * counts.mean()

    def test_failover_moves_only_failed_sites_clients(self):
        fleet = NeutralizerFleet.build(6)
        population = ClientPopulation(20_000, seed=13)
        before = fleet.assign_sites(population.ring_positions)
        fleet.fail_site("site02")
        after = fleet.assign_sites(population.ring_positions)
        failed_index = [site.name for site in fleet.sites].index("site02")
        moved = before != after
        assert (before[moved] == failed_index).all()
        assert failed_index not in after
        # Restoring brings exactly the old assignment back.
        fleet.restore_site("site02")
        assert np.array_equal(fleet.assign_sites(population.ring_positions), before)

    def test_capacity_reflects_health(self):
        fleet = NeutralizerFleet.build(3, cores=4.0)
        assert fleet.data_capacity_pps().sum() == pytest.approx(
            3 * fleet.cost_model.data_packets_per_second(4.0)
        )
        fleet.fail_site("site01")
        assert fleet.data_capacity_pps()[1] == 0.0

    def test_all_sites_down_rejected(self):
        fleet = NeutralizerFleet.build(1)
        with pytest.raises(TopologyError):
            fleet.fail_site("site00")

    def test_duplicate_site_names_rejected(self):
        with pytest.raises(TopologyError):
            NeutralizerFleet([FleetSite("a"), FleetSite("a")])

    def test_unknown_site_name_rejected(self):
        fleet = NeutralizerFleet.build(2)
        with pytest.raises(TopologyError, match="unknown site"):
            fleet.fail_site("site99")


class TestCostModel:
    def test_capacity_scales_with_cores(self):
        model = CryptoCostModel.default()
        assert model.data_packets_per_second(8.0) == pytest.approx(
            8 * model.data_packets_per_second(1.0)
        )

    def test_data_path_is_cheaper_than_key_setup(self):
        # The paper's design point: per-packet symmetric work must cost far
        # less than the per-source RSA encryption.
        model = CryptoCostModel.default()
        assert model.data_packet_cost_seconds < model.key_setup_cost_seconds

    def test_scaled_speeds_everything_up(self):
        model = CryptoCostModel.default()
        faster = model.scaled(2.0)
        assert faster.data_packets_per_second() == pytest.approx(
            2 * model.data_packets_per_second()
        )

    def test_calibrated_measures_positive_rates(self):
        model = CryptoCostModel.calibrated(iterations=20)
        assert model.aes_blocks_per_second > 0
        assert model.rsa512_encryptions_per_second > 0
        assert model.data_packet_cost_seconds > 0
