"""Population vectors, demand classes, and consistent-hash fleet assignment."""

import numpy as np
import pytest

from repro.exceptions import TopologyError, WorkloadError
from repro.scale import (
    ClientPopulation,
    CryptoCostModel,
    DemandClass,
    FleetSite,
    NeutralizerFleet,
    PopulationMix,
    default_mix,
    voip_class,
)
from repro.scale.population import neutralized_wire_bytes


class TestDemandClasses:
    def test_voip_class_matches_apps_codec(self):
        voip = voip_class()
        # 20 ms frames → 50 packets/s, 160-byte payload plus wire overhead.
        assert voip.packets_per_second == pytest.approx(50.0)
        assert voip.packet_bytes == neutralized_wire_bytes(160)

    def test_wire_overhead_exceeds_plain_udp(self):
        # The shim adds the epoch/nonce/address/tag fields on top of IP+UDP.
        assert neutralized_wire_bytes(100) > 20 + 8 + 100

    def test_invalid_class_rejected(self):
        with pytest.raises(WorkloadError):
            DemandClass(name="bad", packets_per_second=0.0, packet_bytes=100)
        with pytest.raises(WorkloadError):
            DemandClass(name="bad", packets_per_second=1.0, packet_bytes=100, duty_cycle=1.5)

    def test_mix_fractions_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            PopulationMix(classes=(voip_class(),), fractions=(0.5,))


class TestPopulation:
    def test_deterministic_from_seed(self):
        one = ClientPopulation(5_000, seed=42)
        two = ClientPopulation(5_000, seed=42)
        assert np.array_equal(one.class_index, two.class_index)
        assert np.array_equal(one.region_index, two.region_index)
        assert np.array_equal(one.ring_positions, two.ring_positions)
        other = ClientPopulation(5_000, seed=43)
        assert not np.array_equal(one.class_index, other.class_index)

    def test_mix_fractions_respected(self):
        population = ClientPopulation(50_000, seed=1)
        fractions = population.class_counts() / population.n_clients
        for measured, expected in zip(fractions, default_mix().fractions):
            assert measured == pytest.approx(expected, abs=0.02)

    def test_group_counts_cover_every_client(self):
        population = ClientPopulation(10_000, regions=4, seed=9)
        fleet = NeutralizerFleet.build(5)
        sites = fleet.assign_sites(population.ring_positions)
        counts = population.group_counts(sites, fleet.n_sites)
        assert counts.shape == (4, population.n_classes, 5)
        assert counts.sum() == population.n_clients

    def test_empty_population_rejected(self):
        with pytest.raises(WorkloadError):
            ClientPopulation(0)


class TestFleet:
    def test_assignment_matches_scalar_ring_lookup(self):
        fleet = NeutralizerFleet.build(4)
        population = ClientPopulation(300, seed=3)
        assigned = fleet.assign_sites(population.ring_positions)
        for position, site_index in zip(population.ring_positions[:50], assigned[:50]):
            expected = fleet.ring.site_for(int(position).to_bytes(8, "big"))
            # site_for hashes its key; compare via the ring table instead.
            positions, owners = fleet.ring.table()
            slot = np.searchsorted(np.asarray(positions, dtype=np.uint64), position)
            if slot == len(positions):
                slot = 0
            assert fleet.sites[site_index].name == owners[slot]
            assert expected in [site.name for site in fleet.sites]

    def test_assignment_is_roughly_balanced(self):
        fleet = NeutralizerFleet.build(8, replicas=128)
        population = ClientPopulation(80_000, seed=11)
        counts = np.bincount(fleet.assign_sites(population.ring_positions), minlength=8)
        assert counts.min() > 0.4 * counts.mean()
        assert counts.max() < 2.0 * counts.mean()

    def test_failover_moves_only_failed_sites_clients(self):
        fleet = NeutralizerFleet.build(6)
        population = ClientPopulation(20_000, seed=13)
        before = fleet.assign_sites(population.ring_positions)
        fleet.fail_site("site02")
        after = fleet.assign_sites(population.ring_positions)
        failed_index = [site.name for site in fleet.sites].index("site02")
        moved = before != after
        assert (before[moved] == failed_index).all()
        assert failed_index not in after
        # Restoring brings exactly the old assignment back.
        fleet.restore_site("site02")
        assert np.array_equal(fleet.assign_sites(population.ring_positions), before)

    def test_capacity_reflects_health(self):
        fleet = NeutralizerFleet.build(3, cores=4.0)
        assert fleet.data_capacity_pps().sum() == pytest.approx(
            3 * fleet.cost_model.data_packets_per_second(4.0)
        )
        fleet.fail_site("site01")
        assert fleet.data_capacity_pps()[1] == 0.0

    def test_all_sites_down_rejected(self):
        fleet = NeutralizerFleet.build(1)
        with pytest.raises(TopologyError):
            fleet.fail_site("site00")

    def test_duplicate_site_names_rejected(self):
        with pytest.raises(TopologyError):
            NeutralizerFleet([FleetSite("a"), FleetSite("a")])

    def test_unknown_site_name_rejected(self):
        fleet = NeutralizerFleet.build(2)
        with pytest.raises(TopologyError, match="unknown site"):
            fleet.fail_site("site99")


class TestCostModel:
    def test_capacity_scales_with_cores(self):
        model = CryptoCostModel.default()
        assert model.data_packets_per_second(8.0) == pytest.approx(
            8 * model.data_packets_per_second(1.0)
        )

    def test_data_path_is_cheaper_than_key_setup(self):
        # The paper's design point: per-packet symmetric work must cost far
        # less than the per-source RSA encryption.
        model = CryptoCostModel.default()
        assert model.data_packet_cost_seconds < model.key_setup_cost_seconds

    def test_scaled_speeds_everything_up(self):
        model = CryptoCostModel.default()
        faster = model.scaled(2.0)
        assert faster.data_packets_per_second() == pytest.approx(
            2 * model.data_packets_per_second()
        )

    def test_calibrated_measures_positive_rates(self):
        model = CryptoCostModel.calibrated(iterations=20)
        assert model.aes_blocks_per_second > 0
        assert model.rsa512_encryptions_per_second > 0
        assert model.data_packet_cost_seconds > 0


class TestSegmentAssignment:
    """The sorted-segment view must agree exactly with per-client lookup."""

    def test_segments_match_assign_sites(self):
        fleet = NeutralizerFleet.build(7, replicas=32)
        population = ClientPopulation(30_000, seed=17)
        positions, _, _, _ = population.ring_sorted()
        cuts, owners = fleet.assignment_segments(positions)
        via_segments = np.repeat(owners, np.diff(cuts))
        order = np.argsort(population.ring_positions, kind="stable")
        via_lookup = fleet.assign_sites(population.ring_positions)[order]
        assert np.array_equal(via_segments, via_lookup)

    def test_segments_cover_every_client_once(self):
        fleet = NeutralizerFleet.build(5)
        population = ClientPopulation(8_000, seed=21)
        positions, _, _, _ = population.ring_sorted()
        cuts, owners = fleet.assignment_segments(positions)
        assert cuts[0] == 0 and cuts[-1] == population.n_clients
        assert (np.diff(cuts) >= 0).all()
        assert owners.size == cuts.size - 1

    def test_ring_sorted_is_cached_and_consistent(self):
        population = ClientPopulation(1_000, seed=5)
        first = population.ring_sorted()
        second = population.ring_sorted()
        assert first[0] is second[0]  # same arrays, not recomputed
        assert (np.diff(first[0].astype(object)) >= 0).all()


class TestIncrementalTemplate:
    """rebuilt() must be indistinguishable from building from scratch."""

    @staticmethod
    def assert_equivalent(incremental, fresh):
        assert np.array_equal(incremental.counts3d, fresh.counts3d)
        assert np.array_equal(incremental.clients_per_site, fresh.clients_per_site)
        assert np.array_equal(incremental.group_clients, fresh.group_clients)
        assert np.array_equal(incremental.region_of, fresh.region_of)
        assert np.array_equal(incremental.class_of, fresh.class_of)
        assert np.array_equal(incremental.site_of, fresh.site_of)
        assert np.array_equal(incremental.usage, fresh.usage)

    def test_rebuild_after_failure_and_recovery(self):
        from repro.scale.scenario import ProblemTemplate, ScaleScenario

        population = ClientPopulation(25_000, seed=23)
        fleet = NeutralizerFleet.build(8)
        scenario = ScaleScenario(population, fleet)
        original = scenario.build_template()

        fleet.fail_site("site05")
        incremental = scenario.build_template()
        fresh = ProblemTemplate.build(
            population, fleet, region_uplink_bps=scenario.region_uplink_bps
        )
        self.assert_equivalent(incremental, fresh)
        # Exactly the failed site's clients moved.
        assert incremental.remapped_from_parent == original.clients_per_site[5]
        assert incremental.clients_per_site[5] == 0

        fleet.restore_site("site05")
        restored = scenario.build_template()
        self.assert_equivalent(restored, original)
        assert restored.remapped_from_parent == incremental.remapped_from_parent

    def test_payload_nbytes_counts_the_template_arrays(self):
        from repro.scale.scenario import ScaleScenario

        population = ClientPopulation(10_000, seed=23)
        template = ScaleScenario(population, NeutralizerFleet.build(6)).build_template()
        expected = sum(
            a.nbytes
            for a in (
                template.cuts, template.seg_owners, template.counts3d,
                template.clients_per_site, template.region_of,
                template.class_of, template.site_of, template.group_clients,
                template.base_demands, template.bits_per_packet,
                template.base_setups_per_flow, template.usage,
                *template.class_members,
            )
        )
        if template.elastic_flows is not None:
            expected += template.elastic_flows.nbytes
        if template.flow_alpha is not None:
            expected += template.flow_alpha.nbytes
        assert template.payload_nbytes == expected > 0
        # The footprint is per-flow/per-site state, not O(n_clients): the
        # parallel engine keeps the population in shared memory precisely
        # because the per-worker template cache stays small beside it.
        assert template.payload_nbytes < population.class_index.nbytes * 8

    def test_rebuild_through_many_membership_changes(self):
        from repro.scale.scenario import ProblemTemplate, ScaleScenario

        population = ClientPopulation(12_000, seed=29)
        fleet = NeutralizerFleet.build(10)
        scenario = ScaleScenario(population, fleet)
        scenario.build_template()
        for action, name in [
            ("fail", "site02"), ("fail", "site07"), ("drain", "site04"),
            ("restore", "site02"), ("activate", "site04"), ("drain", "site09"),
            ("restore", "site07"),
        ]:
            getattr(fleet, {"fail": "fail_site", "restore": "restore_site",
                            "drain": "drain_site", "activate": "activate_site"}[action])(name)
            incremental = scenario.build_template()
            fresh = ProblemTemplate.build(
                population, fleet, region_uplink_bps=scenario.region_uplink_bps
            )
            self.assert_equivalent(incremental, fresh)
        assert population.n_clients == incremental.counts3d.sum()


class TestDrainLifecycle:
    def test_drained_site_leaves_the_ring_and_capacity(self):
        fleet = NeutralizerFleet.build(4, cores=2.0)
        generation = fleet.generation
        fleet.drain_site("site03")
        assert fleet.generation == generation + 1
        assert "site03" not in fleet.in_service_names
        assert "site03" in fleet.healthy_site_names  # drained, not failed
        assert fleet.cpu_capacity_cores()[3] == 0.0
        fleet.activate_site("site03")
        assert "site03" in fleet.in_service_names

    def test_drain_while_failed_does_not_touch_the_ring(self):
        fleet = NeutralizerFleet.build(4)
        fleet.fail_site("site01")
        generation = fleet.generation
        state = fleet.ring_state()
        fleet.drain_site("site01")  # already out of the ring: no rebuild
        assert fleet.generation == generation
        assert NeutralizerFleet.ring_moved_fraction(state, fleet.ring_state()) == 0.0
        # Recovery of a drained site must NOT rejoin the ring...
        fleet.restore_site("site01")
        assert fleet.generation == generation
        assert "site01" not in fleet.in_service_names
        # ...until it is explicitly re-activated.
        fleet.activate_site("site01")
        assert fleet.generation == generation + 1
        assert "site01" in fleet.in_service_names

    def test_last_serving_site_cannot_be_drained(self):
        fleet = NeutralizerFleet.build(2)
        fleet.drain_site("site01")
        with pytest.raises(TopologyError):
            fleet.drain_site("site00")

    def test_health_snapshot_round_trips_both_flags(self):
        fleet = NeutralizerFleet.build(4)
        snapshot = fleet.health_snapshot()
        fleet.fail_site("site00")
        fleet.drain_site("site02")
        assert fleet.health_snapshot() != snapshot
        fleet.restore_health(snapshot)
        assert fleet.health_snapshot() == snapshot
        assert fleet.in_service_names == [f"site{i:02d}" for i in range(4)]

    def test_moved_fraction_matches_snapshot_diff(self):
        fleet = NeutralizerFleet.build(6)
        before_state = fleet.ring_state()
        before_snapshot = fleet.ring_snapshot()
        fleet.fail_site("site04")
        fast = NeutralizerFleet.ring_moved_fraction(before_state, fleet.ring_state())
        slow = before_snapshot.diff(fleet.ring_snapshot()).moved_fraction
        assert fast == pytest.approx(slow, abs=1e-12)
        assert fast > 0
