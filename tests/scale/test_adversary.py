"""The adversary game layer: confusion model, budget, adoption, E16."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WorkloadError
from repro.scale import (
    AdoptionModel,
    AdversaryCampaignRunner,
    AdversaryGame,
    AdversaryRun,
    ClassifierModel,
    ClientPopulation,
    ConstantLoad,
    FluidTimeline,
    IspStrategy,
    LatencyModel,
    cross_validate_adversary,
    provisioned_fleet,
)
from repro.scale.scenario import ScaleScenario


def small_population(clients=6_000, seed=9):
    return ClientPopulation(clients, seed=seed)


def small_timeline(population=None, *, game, epochs=40, latency=True,
                   headroom=1.4, sites=8, **kwargs):
    population = population or small_population()
    fleet = provisioned_fleet(population, sites, headroom=headroom)
    return FluidTimeline(
        population, fleet,
        epochs=epochs, epoch_seconds=900.0,
        load=ConstantLoad(1.0),
        adversary=game,
        latency=LatencyModel() if latency else None,
        latency_slo_seconds=0.08,
        **kwargs,
    )


def stepped(game, population=None, *, offered=1.0):
    """One raw game step against a fresh template (unit-level access)."""
    population = population or small_population()
    fleet = provisioned_fleet(population, 8, headroom=1.4)
    template = ScaleScenario(population, fleet).build_template()
    run = AdversaryRun(game, population)
    scale = np.full(template.base_demands.shape, offered)
    return run, template, run.step(0, template, scale, 900.0)


class TestConfigurationValidation:
    def test_classifier_fractions(self):
        with pytest.raises(WorkloadError):
            ClassifierModel(true_positive=1.2)
        with pytest.raises(WorkloadError):
            ClassifierModel(false_positive=-0.1)
        with pytest.raises(WorkloadError):
            ClassifierModel(neutralized_leakage=2.0)

    def test_strategy_knobs(self):
        with pytest.raises(WorkloadError):
            IspStrategy(aggressiveness=1.5)
        with pytest.raises(WorkloadError):
            IspStrategy(target_classes=())
        with pytest.raises(WorkloadError):
            IspStrategy(budget_fraction=0.0)
        with pytest.raises(WorkloadError):
            IspStrategy(escalate_evasion=0.9, blanket_evasion=0.5)
        with pytest.raises(WorkloadError):
            IspStrategy(cooldown_epochs=-1)

    def test_adoption_knobs(self):
        with pytest.raises(WorkloadError):
            AdoptionModel(sensitivity=0.0)
        with pytest.raises(WorkloadError):
            AdoptionModel(adopt_rate=0.0)
        with pytest.raises(WorkloadError):
            AdoptionModel(initial_adoption=1.5)

    def test_unknown_target_class_fails_at_construction(self):
        game = AdversaryGame(isp=IspStrategy(target_classes=("gopher",)))
        with pytest.raises(WorkloadError, match="gopher"):
            small_timeline(game=game)

    def test_factor_trajectory_bounds(self):
        strategy = IspStrategy(aggressiveness=0.6, throttle_floor=0.2)
        assert strategy.initial_factor == pytest.approx(1.0 - 0.3 * 0.8)
        assert strategy.min_factor == pytest.approx(1.0 - 0.6 * 0.8)
        assert not IspStrategy(aggressiveness=0.0).enabled


class TestBudgetConservation:
    def test_flagged_share_never_exceeds_budget_per_region(self):
        # A classifier that wants to flag nearly everything: the budget
        # must clamp coverage pro rata, per region, every epoch.
        game = AdversaryGame(
            isp=IspStrategy(
                aggressiveness=1.0, budget_fraction=0.25,
                classifier=ClassifierModel(true_positive=1.0,
                                           false_positive=0.9,
                                           neutralized_leakage=0.9),
            ),
            adoption=AdoptionModel(initial_adoption=0.5),
        )
        run, template, epoch = stepped(game)
        assert (epoch.flagged_bps_by_region
                <= 0.25 * epoch.offered_bps_by_region + 1e-6).all()
        assert epoch.discriminated_share <= 0.25 + 1e-9

    def test_under_budget_flagging_is_untouched(self):
        game = AdversaryGame(isp=IspStrategy(
            aggressiveness=1.0, budget_fraction=1.0,
            classifier=ClassifierModel(true_positive=0.5, false_positive=0.0,
                                       neutralized_leakage=0.0),
        ))
        run, template, epoch = stepped(game)
        target = np.isin(template.class_of,
                         [template.population.mix.names.index(name)
                          for name in game.isp.target_classes])
        assert epoch.exposed_hit[target] == pytest.approx(0.5)
        assert epoch.exposed_hit[~target] == pytest.approx(0.0)

    def test_timeline_respects_budget_every_epoch(self):
        game = AdversaryGame(
            isp=IspStrategy(aggressiveness=0.9, budget_fraction=0.3),
            adoption=AdoptionModel(sensitivity=10.0),
        )
        result = small_timeline(game=game).run()
        shares = result.discriminated_share
        assert (shares <= 0.3 + 1e-9).all()
        assert shares.max() > 0  # the throttler actually engaged

    def test_served_multiplier_bounds(self):
        game = AdversaryGame(isp=IspStrategy(aggressiveness=1.0))
        run, template, epoch = stepped(game)
        assert (epoch.served_multiplier <= 1.0 + 1e-12).all()
        assert (epoch.served_multiplier >= epoch.throttle_factor - 1e-12).all()


class TestDisabledAdversaryEquivalence:
    def test_none_adversary_is_bit_identical(self):
        """The acceptance criterion: adversary=None reproduces PR 4 results
        bit for bit (the analogue of the solver's alpha=inf delegation)."""
        population = small_population()
        fleet = provisioned_fleet(population, 8, headroom=1.4)
        kwargs = dict(epochs=24, epoch_seconds=900.0,
                      latency=LatencyModel(), latency_slo_seconds=0.08)
        plain = FluidTimeline(population, fleet, **kwargs).run()
        disabled = FluidTimeline(population, fleet, adversary=None,
                                 **kwargs).run()
        strip = lambda record: replace(record, solve_seconds=0.0)
        assert ([strip(r) for r in plain.records]
                == [strip(r) for r in disabled.records])

    def test_inert_game_changes_no_fluid_quantity(self):
        population = small_population()
        fleet = provisioned_fleet(population, 8, headroom=1.4)
        kwargs = dict(epochs=24, epoch_seconds=900.0)
        plain = FluidTimeline(population, fleet, **kwargs).run()
        inert = FluidTimeline(
            population, fleet,
            adversary=AdversaryGame(isp=IspStrategy(aggressiveness=0.0)),
            **kwargs).run()
        for a, b in zip(plain.records, inert.records):
            assert a.goodput_bps == b.goodput_bps
            assert a.delivered_fraction == b.delivered_fraction
            assert a.demand_bps == b.demand_bps
            assert b.discriminated_share == 0.0


class TestGameDynamics:
    def test_throttle_harms_target_classes_and_displaces_exposed_tail(self):
        game = AdversaryGame(
            isp=IspStrategy(aggressiveness=0.8, allow_blanket=False),
            adoption=AdoptionModel(sensitivity=6.0),
        )
        result = small_timeline(game=game).run()
        target = result.class_delivered_fraction(("video", "web"))
        bystander = result.class_delivered_fraction(("voip",))
        assert target.min() < 0.95
        assert bystander.min() > target.min()
        # The split: an epoch with active throttling shows the exposed tail
        # displaced while the neutralized twin stays near the base curve.
        throttled = [r for r in result.records
                     if r.discriminated_share > 0 and r.exposed_latency_p95]
        assert throttled
        record = throttled[len(throttled) // 2]
        assert (record.exposed_latency_p95["video"]
                >= record.neutralized_latency_p95["video"])

    def test_escalation_reacts_to_evasion_and_stops_at_min_factor(self):
        game = AdversaryGame(
            isp=IspStrategy(aggressiveness=1.0, throttle_floor=0.2,
                            allow_blanket=False, cooldown_epochs=0),
            adoption=AdoptionModel(sensitivity=20.0, adoption_cost=0.01),
        )
        result = small_timeline(game=game).run()
        escalations = [event for record in result.records
                       for event in record.adversary_events
                       if event.startswith("escalate")]
        assert escalations
        # The last escalation lands exactly on min_factor.
        assert escalations[-1].endswith(f"x{game.isp.min_factor:g}")

    def test_adoption_rekeys_through_the_ring(self):
        game = AdversaryGame(
            isp=IspStrategy(aggressiveness=0.9),
            adoption=AdoptionModel(sensitivity=12.0),
        )
        result = small_timeline(game=game).run()
        assert result.final_adoption_fraction > 0.5
        # Joining re-keys; a client that lapses and re-adopts re-keys again,
        # so the total is bounded by a few population multiples, not one.
        population = result.n_clients
        assert 0 < result.total_clients_rekeyed <= population * 3
        # The re-key wave shows up as key-setup load at the fleet.
        rekey_epochs = [r for r in result.records if r.clients_rekeyed > 0]
        quiet_epochs = [r for r in result.records if r.clients_rekeyed == 0]
        assert rekey_epochs and quiet_epochs
        assert (max(r.key_setup_pps for r in rekey_epochs)
                > min(r.key_setup_pps for r in quiet_epochs))

    def test_blanket_cycle_backs_off_on_collateral(self):
        game = AdversaryGame(
            isp=IspStrategy(aggressiveness=1.0, allow_blanket=True,
                            blanket_evasion=0.5, backoff_collateral=0.25),
            adoption=AdoptionModel(sensitivity=16.0, adoption_cost=0.02),
        )
        result = small_timeline(game=game, epochs=60).run()
        events = [event for record in result.records
                  for event in record.adversary_events]
        assert any(event == "blanket on" for event in events)
        assert any(event == "blanket off" for event in events)

    def test_recorded_latency_is_the_experienced_mixture(self):
        # The headline latency fields must agree with the game's own harm
        # ledger: flagged clients sit in the policer queue, so a heavily
        # throttled epoch shows SLO violations even though the fleet-path
        # proxy alone stays comfortably under the SLO.
        game = AdversaryGame(
            isp=IspStrategy(aggressiveness=1.0, allow_blanket=False),
            # Adoption priced out: everyone stays exposed to the throttle.
            adoption=AdoptionModel(adoption_cost=10.0),
        )
        result = small_timeline(game=game, epochs=16).run()
        throttled = [r for r in result.records if r.discriminated_share > 0.1]
        assert throttled
        record = throttled[-1]
        assert record.latency_slo_violations > 0.05
        assert record.latency_p99_seconds > 0.1  # policer tail, not base RTT

    def test_series_includes_adversary_columns(self):
        game = AdversaryGame(isp=IspStrategy(aggressiveness=0.7))
        result = small_timeline(game=game, epochs=12).run()
        series = result.series()
        assert "adoption" in series and "discr share" in series
        assert result.has_adversary


class TestAdoptionBoundsProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        aggressiveness=st.floats(0.0, 1.0),
        sensitivity=st.floats(0.5, 30.0),
        cost=st.floats(0.0, 0.5),
        adopt_rate=st.floats(0.05, 1.0),
        churn_rate=st.floats(0.05, 1.0),
        initial=st.floats(0.0, 1.0),
    )
    def test_adoption_fraction_stays_in_unit_interval(
            self, aggressiveness, sensitivity, cost, adopt_rate, churn_rate,
            initial):
        population = ClientPopulation(800, seed=3)
        fleet = provisioned_fleet(population, 4, headroom=1.1)
        game = AdversaryGame(
            isp=IspStrategy(aggressiveness=aggressiveness),
            adoption=AdoptionModel(
                sensitivity=sensitivity, adoption_cost=cost,
                adopt_rate=adopt_rate, churn_rate=churn_rate,
                initial_adoption=initial,
            ),
        )
        timeline = FluidTimeline(population, fleet, epochs=10,
                                 epoch_seconds=900.0, adversary=game)
        result = timeline.run()
        fractions = result.adoption_fraction
        assert (fractions >= 0.0).all() and (fractions <= 1.0).all()
        assert (result.discriminated_share >= 0.0).all()
        assert (result.discriminated_share <= 1.0).all()

    @settings(max_examples=40, deadline=None)
    @given(harm=st.floats(-2.0, 2.0), sensitivity=st.floats(0.5, 50.0),
           cost=st.floats(0.0, 1.0))
    def test_adoption_target_is_a_fraction(self, harm, sensitivity, cost):
        model = AdoptionModel(sensitivity=sensitivity, adoption_cost=cost)
        target = model.target(np.array([harm]))
        assert 0.0 <= target[0] <= 1.0


class TestE16Campaign:
    def small_runner(self, seed=7, **kwargs):
        kwargs.setdefault("clients", 15_000)
        kwargs.setdefault("epochs", 50)
        kwargs.setdefault("replicas_per_point", 2)
        kwargs.setdefault("aggressiveness", (0.0, 0.5, 1.0))
        kwargs.setdefault("sensitivities", (2.0, 12.0))
        return AdversaryCampaignRunner(seed=seed, **kwargs)

    def test_same_seed_same_distributions(self):
        strip = lambda records: {
            key: tuple(replace(r, wall_seconds=0.0) for r in value)
            for key, value in records.items()
        }
        first = self.small_runner().run()
        second = self.small_runner().run()
        assert first.points == second.points
        assert strip(first.records) == strip(second.records)
        different = self.small_runner(seed=8).run()
        assert different.points != first.points

    def test_frontier_shows_the_self_defeating_regime(self):
        result = self.small_runner().run()
        defeated = result.self_defeating_points()
        assert defeated, "cheap adoption must make escalation backfire"
        assert all(point.sensitivity == 12.0 for point in defeated)
        # At the cheap-adoption end, full aggressiveness lands less harm
        # than the moderate point, and the discriminated share collapses.
        frontier = result.frontier(12.0)
        moderate = next(p for p in frontier if p.aggressiveness == 0.5)
        maximal = next(p for p in frontier if p.aggressiveness == 1.0)
        assert maximal.final_adoption > moderate.final_adoption
        assert maximal.equilibrium_target_harm < moderate.equilibrium_target_harm
        assert (maximal.mean_discriminated_share
                < moderate.mean_discriminated_share)
        assert "SELF-DEFEATING" in result.report.render()

    def test_zero_aggressiveness_point_is_clean(self):
        result = self.small_runner().run()
        for sensitivity in (2.0, 12.0):
            base = next(p for p in result.frontier(sensitivity)
                        if p.aggressiveness == 0.0)
            assert base.mean_discriminated_share == 0.0
            assert base.final_adoption == 0.0

    def test_progress_snapshot(self):
        runner = self.small_runner()
        state = runner.get_current_state()
        assert not state.done and state.total_points == 12
        runner.run()
        assert runner.get_current_state().done

    def test_custom_isp_drives_the_harm_ledger(self):
        # An explicit strategy overrides the scalar convenience knobs: the
        # measured harm and the report must describe the game that ran.
        runner = self.small_runner(
            isp=IspStrategy(target_classes=("voip",), allow_blanket=False),
            aggressiveness=(0.0, 1.0), sensitivities=(2.0,),
        )
        assert runner.target_classes == ("voip",)
        assert "targets voip" in runner.run().report.render()

    def test_bad_variance_scheme_fails_at_construction(self):
        with pytest.raises(WorkloadError, match="variance-reduction"):
            self.small_runner(variance_reduction="qmc")


class TestAdversaryCrossValidation:
    def test_fluid_adversary_matches_packet_level_within_10_percent(self):
        result = cross_validate_adversary(duration_seconds=3.0)
        assert result.within_tolerance, result.failure_message()
        adoptions = [arm.adoption for arm in result.arms]
        assert adoptions == [0.0, 0.5]
        # More adoption, more delivered: the neutralized share ducks the rule.
        assert (result.arms[1].packet_delivered_fraction
                > result.arms[0].packet_delivered_fraction)
        assert "E16v" in result.report.render()
