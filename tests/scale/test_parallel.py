"""The parallel campaign executor: equivalence, resume, crashes, shm, P²."""

import json
import os
import pickle

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.scale import (
    AdversaryCampaignRunner,
    CampaignUnit,
    LatencyCampaignRunner,
    P2Quantile,
    ProcessPoolCampaignExecutor,
    RunTable,
    SharedPopulationPack,
    StochasticCampaignRunner,
    StreamingPercentiles,
    Telemetry,
    TimelineCampaignRunner,
    canonical_result_bytes,
    run_churn_slo_frontier,
)
from repro.scale.population import ClientPopulation


def make_e13(**kwargs):
    kwargs.setdefault("clients", 1200)
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("scenarios", ("flash_crowd", "regional_outage"))
    return TimelineCampaignRunner(**kwargs)


def make_e14(**kwargs):
    kwargs.setdefault("clients", 1500)
    kwargs.setdefault("nominal_sites", 4)
    kwargs.setdefault("max_sites", 6)
    kwargs.setdefault("epochs", 10)
    kwargs.setdefault("replicas", 5)
    kwargs.setdefault("seed", 7)
    return StochasticCampaignRunner(**kwargs)


def make_e15(**kwargs):
    kwargs.setdefault("clients", 1200)
    kwargs.setdefault("epochs", 8)
    kwargs.setdefault("replicas", 4)
    kwargs.setdefault("seed", 11)
    return LatencyCampaignRunner(**kwargs)


def make_e16(**kwargs):
    kwargs.setdefault("clients", 1200)
    kwargs.setdefault("n_sites", 4)
    kwargs.setdefault("epochs", 8)
    kwargs.setdefault("replicas_per_point", 2)
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("aggressiveness", (0.3, 0.7))
    kwargs.setdefault("sensitivities", (4.0,))
    return AdversaryCampaignRunner(**kwargs)


class CrashingRunner(StochasticCampaignRunner):
    """E14 variant whose third unit raises inside the worker."""

    CRASH_REPLICA = 2

    def run_unit(self, unit):
        if unit.replica == self.CRASH_REPLICA:
            raise RuntimeError("synthetic unit failure")
        return super().run_unit(unit)


class InterruptingRunner(StochasticCampaignRunner):
    """E14 variant whose second unit raises KeyboardInterrupt."""

    def run_unit(self, unit):
        if unit.replica == 1:
            raise KeyboardInterrupt
        return super().run_unit(unit)


class PoisonedRunner(StochasticCampaignRunner):
    """E14 variant that must never be asked to simulate (resume-only)."""

    def run_unit(self, unit):
        raise AssertionError("resume must not re-run completed units")


class TestStreamingPercentiles:
    def test_small_streams_are_exact(self):
        stream = StreamingPercentiles()
        stream.extend([3.0, 1.0, 2.0])
        assert stream.quantile(0.5) == pytest.approx(2.0)
        assert stream.minimum == 1.0 and stream.maximum == 3.0
        assert stream.mean == pytest.approx(2.0)
        assert stream.count == 3

    def test_count_sum_min_max_stay_exact_on_long_streams(self):
        values = np.random.default_rng(1).normal(10.0, 2.0, size=5000)
        stream = StreamingPercentiles()
        stream.extend(values)
        assert stream.count == 5000
        assert stream.mean == pytest.approx(float(values.mean()))
        assert stream.minimum == float(values.min())
        assert stream.maximum == float(values.max())

    @pytest.mark.parametrize("q", [0.05, 0.5, 0.95])
    def test_p2_matches_numpy_within_documented_tolerance(self, q):
        # docs/parallel.md documents ~1% of the sample spread for smooth
        # distributions at >= 10^3 samples.
        values = np.random.default_rng(7).normal(0.0, 1.0, size=10_000)
        stream = StreamingPercentiles()
        stream.extend(values)
        exact = float(np.percentile(values, q * 100.0))
        spread = float(values.max() - values.min())
        assert abs(stream.quantile(q) - exact) <= 0.01 * spread

    def test_untracked_quantile_and_empty_stream_raise(self):
        stream = StreamingPercentiles()
        with pytest.raises(WorkloadError):
            stream.quantile(0.5)
        stream.add(1.0)
        with pytest.raises(WorkloadError):
            stream.quantile(0.123)
        with pytest.raises(WorkloadError):
            P2Quantile(1.5)

    def test_p2_quantile_tracks_uniform_median(self):
        est = P2Quantile(0.5)
        for value in np.random.default_rng(3).uniform(0.0, 1.0, size=4000):
            est.add(float(value))
        assert est.value() == pytest.approx(0.5, abs=0.03)
        assert est.count == 4000


class TestCanonicalResultBytes:
    def test_same_seed_same_bytes_different_seed_differs(self):
        first = canonical_result_bytes(make_e14().run())
        second = canonical_result_bytes(make_e14().run())
        other = canonical_result_bytes(make_e14(seed=8).run())
        assert first == second
        assert first != other

    def test_wall_clock_fields_are_dropped(self):
        result = make_e14().run()
        decoded = json.loads(canonical_result_bytes(result))
        assert "started_at" not in decoded
        assert "duration_seconds" not in decoded
        assert "report" not in decoded
        assert all("wall_seconds" not in record
                   for record in decoded["records"])


class TestRunTable:
    def test_roundtrip_and_atomic_files(self, tmp_path):
        table = RunTable.open(tmp_path / "ck", run_id="r1", total_units=3)
        unit = CampaignUnit(index=1, point=None, replica=1, label="replica 1")
        table.record_outcome(unit, {"value": 42})
        assert table.completed_outcomes() == {1: {"value": 42}}
        # atomic writes leave no temp droppings
        assert not list((tmp_path / "ck").glob("*.tmp-*"))

    def test_header_mismatch_refuses_to_resume(self, tmp_path):
        RunTable.open(tmp_path / "ck", run_id="r1", total_units=3)
        with pytest.raises(WorkloadError):
            RunTable.open(tmp_path / "ck", run_id="r2", total_units=3)
        with pytest.raises(WorkloadError):
            RunTable.open(tmp_path / "ck", run_id="r1", total_units=4)

    def test_corrupt_records_degrade_to_rerun_not_crash(self, tmp_path):
        table = RunTable.open(tmp_path / "ck", run_id="r1", total_units=2)
        good = CampaignUnit(index=0, point=None, replica=0, label="replica 0")
        bad = CampaignUnit(index=1, point=None, replica=1, label="replica 1")
        table.record_outcome(good, "ok")
        table.record_outcome(bad, "will corrupt")
        table.unit_path(1).write_text("{ not json")
        assert table.completed_outcomes() == {0: "ok"}

    def test_failures_are_recorded_and_not_resumed(self, tmp_path):
        table = RunTable.open(tmp_path / "ck", run_id="r1", total_units=2)
        unit = CampaignUnit(index=0, point=None, replica=0, label="replica 0")
        table.record_failure(unit, "RuntimeError: boom")
        assert table.completed_outcomes() == {}
        assert table.failed_units() == {0: "RuntimeError: boom"}


class TestSerialEquivalence:
    """n_workers=1 must be bit-identical to the plain serial path."""

    @pytest.mark.parametrize("factory", [make_e13, make_e14, make_e15, make_e16],
                             ids=["E13", "E14", "E15", "E16"])
    def test_one_worker_is_bit_identical_to_serial(self, factory):
        serial = canonical_result_bytes(factory().run())
        one = canonical_result_bytes(factory().run_parallel(n_workers=1))
        assert one == serial

    def test_runners_survive_pickling(self):
        # the spawn path ships the runner through __getstate__
        runner = make_e14()
        clone = pickle.loads(pickle.dumps(runner))
        assert canonical_result_bytes(clone.run()) == \
            canonical_result_bytes(make_e14().run())

    def test_zero_workers_is_rejected(self):
        with pytest.raises(WorkloadError):
            ProcessPoolCampaignExecutor(make_e14(), n_workers=0)


class TestPooledEquivalence:
    """Multi-process runs must produce identical aggregate tables."""

    def test_e14_pool_matches_serial(self):
        serial = canonical_result_bytes(make_e14().run())
        pooled = canonical_result_bytes(make_e14().run_parallel(n_workers=2))
        assert pooled == serial

    def test_e16_pool_matches_serial(self):
        serial = canonical_result_bytes(make_e16().run())
        pooled = canonical_result_bytes(make_e16().run_parallel(n_workers=2))
        assert pooled == serial

    def test_pool_merges_worker_telemetry_into_one_registry(self):
        serial_telemetry = Telemetry()
        make_e14(telemetry=serial_telemetry).run()
        pooled_telemetry = Telemetry()
        runner = make_e14(telemetry=pooled_telemetry)
        executor = ProcessPoolCampaignExecutor(runner, n_workers=2)
        executor.run()
        serial_counters = serial_telemetry.metrics.as_dict()["counters"]
        pooled_counters = pooled_telemetry.metrics.as_dict()["counters"]
        simulation_keys = {key for key in serial_counters
                           if key.split(".")[0] in
                           ("solver", "timeline", "scenario", "campaign")}
        for key in simulation_keys:
            assert pooled_counters.get(key, 0.0) == pytest.approx(
                serial_counters[key]), key
        gauges = pooled_telemetry.metrics.as_dict()["gauges"]
        assert gauges["parallel.n_workers"] == 2
        assert gauges["parallel.shared_bytes"] > 0
        assert executor.phase_durations.get("replica")
        assert runner.get_current_state().completed_points == runner.replicas

    def test_pool_writes_per_worker_span_files(self, tmp_path):
        runner = make_e14()
        executor = ProcessPoolCampaignExecutor(
            runner, n_workers=2, trace_dir=tmp_path / "spans")
        executor.run()
        span_files = list((tmp_path / "spans").glob("worker-*.jsonl"))
        assert span_files
        records = [json.loads(line)
                   for line in span_files[0].read_text().splitlines()]
        assert any(record["name"] == "replica" for record in records)


class TestResume:
    def test_interrupted_checkpoint_resumes_to_identical_result(self, tmp_path):
        baseline = canonical_result_bytes(make_e14().run())
        first = ProcessPoolCampaignExecutor(
            make_e14(), n_workers=1, checkpoint_dir=tmp_path / "ck")
        first.run()
        # simulate an interruption that lost two units
        unit_files = sorted((tmp_path / "ck").glob("unit-*.json"))
        for path in unit_files[:2]:
            path.unlink()
        second = ProcessPoolCampaignExecutor(
            make_e14(), n_workers=1, checkpoint_dir=tmp_path / "ck")
        resumed = second.run()
        assert canonical_result_bytes(resumed) == baseline
        assert second.units_resumed == len(unit_files) - 2

    def test_resume_does_not_rerun_completed_units(self, tmp_path):
        ProcessPoolCampaignExecutor(
            make_e14(), n_workers=1, checkpoint_dir=tmp_path / "ck").run()
        poisoned = PoisonedRunner(
            clients=1500, nominal_sites=4, max_sites=6,
            epochs=10, replicas=5, seed=7)
        executor = ProcessPoolCampaignExecutor(
            poisoned, n_workers=1, checkpoint_dir=tmp_path / "ck")
        result = executor.run()  # would raise if any unit re-ran
        assert executor.units_resumed == 5
        assert canonical_result_bytes(result) == \
            canonical_result_bytes(make_e14().run())

    def test_checkpoint_rejects_a_different_campaign(self, tmp_path):
        ProcessPoolCampaignExecutor(
            make_e14(), n_workers=1, checkpoint_dir=tmp_path / "ck").run()
        with pytest.raises(WorkloadError):
            ProcessPoolCampaignExecutor(
                make_e14(seed=99), n_workers=1,
                checkpoint_dir=tmp_path / "ck").run()

    def test_frontier_sweep_resumes_per_point(self, tmp_path):
        kwargs = dict(clients=1000, epochs=6, replicas=3, seed=3,
                      targets=(0.90, 0.95))
        baseline = canonical_result_bytes(run_churn_slo_frontier(**kwargs))
        interrupted = canonical_result_bytes(run_churn_slo_frontier(
            **kwargs, n_workers=1, checkpoint_dir=tmp_path / "frontier"))
        # second pass is resume-only and must agree
        resumed = canonical_result_bytes(run_churn_slo_frontier(
            **kwargs, n_workers=1, checkpoint_dir=tmp_path / "frontier"))
        assert interrupted == baseline
        assert resumed == baseline
        assert (tmp_path / "frontier" / "target-0.9" / "header.json").exists()


class TestFailureHandling:
    def test_crashing_unit_surfaces_and_does_not_hang(self, tmp_path):
        runner = CrashingRunner(
            clients=1500, nominal_sites=4, max_sites=6,
            epochs=10, replicas=5, seed=7)
        executor = ProcessPoolCampaignExecutor(
            runner, n_workers=2, checkpoint_dir=tmp_path / "ck")
        with pytest.raises(WorkloadError, match="synthetic unit failure"):
            executor.run()
        table = RunTable.open(tmp_path / "ck", run_id=runner.run_id,
                              total_units=5)
        assert CrashingRunner.CRASH_REPLICA in table.failed_units()

    def test_serial_crash_is_equally_surfaced(self, tmp_path):
        runner = CrashingRunner(
            clients=1500, nominal_sites=4, max_sites=6,
            epochs=10, replicas=5, seed=7)
        executor = ProcessPoolCampaignExecutor(
            runner, n_workers=1, checkpoint_dir=tmp_path / "ck")
        with pytest.raises(WorkloadError, match="synthetic unit failure"):
            executor.run()
        table = RunTable.open(tmp_path / "ck", run_id=runner.run_id,
                              total_units=5)
        assert table.failed_units()
        assert table.completed_outcomes()  # units before the crash persisted


def _shm_names():
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


class TestSharedMemoryLifecycle:
    def test_pack_attach_roundtrips_population(self):
        population = ClientPopulation(4000, seed=13)
        pack = SharedPopulationPack.create(population)
        try:
            view, segments = SharedPopulationPack.attach(pack.manifest)
            assert view.n_clients == population.n_clients
            np.testing.assert_array_equal(view.class_index,
                                          population.class_index)
            np.testing.assert_array_equal(view.ring_positions,
                                          population.ring_positions)
            for left, right in zip(view.ring_sorted(),
                                   population.ring_sorted()):
                np.testing.assert_array_equal(left, right)
            for segment in segments:
                segment.close()
            assert pack.nbytes > 0
        finally:
            pack.close()
            pack.unlink()

    def test_segments_unlinked_on_success(self):
        before = _shm_names()
        make_e14().run_parallel(n_workers=2)
        assert _shm_names() <= before

    def test_segments_unlinked_on_failure(self):
        before = _shm_names()
        runner = CrashingRunner(
            clients=1500, nominal_sites=4, max_sites=6,
            epochs=10, replicas=5, seed=7)
        with pytest.raises(WorkloadError):
            ProcessPoolCampaignExecutor(runner, n_workers=2).run()
        assert _shm_names() <= before

    def test_segments_unlinked_on_keyboard_interrupt(self):
        before = _shm_names()
        runner = InterruptingRunner(
            clients=1500, nominal_sites=4, max_sites=6,
            epochs=10, replicas=5, seed=7)
        with pytest.raises(KeyboardInterrupt):
            ProcessPoolCampaignExecutor(runner, n_workers=2).run()
        assert _shm_names() <= before


class TestAggregationModes:
    def test_p2_aggregation_close_to_exact(self):
        exact = make_e14(replicas=8).run()
        streamed = make_e14(replicas=8, aggregation="p2").run()
        for name, reference in exact.distributions.items():
            estimate = streamed.distributions[name]
            assert estimate.samples == reference.samples
            assert estimate.mean == pytest.approx(reference.mean)
            assert estimate.worst == pytest.approx(reference.worst)
            spread = abs(reference.worst - reference.p50)
            assert abs(estimate.p50 - reference.p50) <= \
                max(0.05 * abs(reference.p50), 0.2 * spread, 1e-6), name

    def test_unknown_aggregation_mode_rejected(self):
        with pytest.raises(WorkloadError):
            make_e14(aggregation="tdigest")
