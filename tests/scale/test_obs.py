"""The observability plane: event stream, fan-in determinism, detectors, gates.

The load-bearing properties, mirroring the telemetry contract:

* **Obs observes, never participates** — enabling the event stream (with
  the full detector suite attached) leaves campaign results byte-identical.
* **The stream is deterministic** — the merged NDJSON export is
  byte-identical between the serial path and the process pool at any
  worker count, verdicts included.
* **Detectors are graded against ground truth** — black-hole verdicts are
  checked site-by-site against the compiled fault schedule (exact onset,
  zero false positives), and against the scripted catalogue scenarios.
"""

import importlib.util
import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scale import (
    EVENT_SCHEMA_VERSION,
    AutoscaleOscillationDetector,
    BlackHoleDetector,
    CorrelatedRegionalOutage,
    EventLog,
    NullTelemetry,
    ProcessPoolCampaignExecutor,
    SloBreachDetector,
    StochasticCampaignRunner,
    Telemetry,
    attach_detectors,
    build_scenario,
    canonical_result_bytes,
    compile_schedule,
    verdicts,
)
from repro.scale.catalogue import scenario_names
from repro.scale.timeline import SiteFailure


def make_e14(**kwargs):
    kwargs.setdefault("clients", 1500)
    kwargs.setdefault("nominal_sites", 4)
    kwargs.setdefault("max_sites", 6)
    kwargs.setdefault("epochs", 10)
    kwargs.setdefault("replicas", 5)
    kwargs.setdefault("seed", 7)
    return StochasticCampaignRunner(**kwargs)


def _obs_telemetry():
    telemetry = Telemetry(trace=False, events=True)
    attach_detectors(telemetry.events)
    return telemetry


# -- the event log itself ----------------------------------------------------------


class TestEventLog:
    def test_emit_assigns_consecutive_seq_and_canonical_json(self):
        log = EventLog()
        log.emit("epoch", epoch=0, delivered_fraction=0.75)
        log.emit("epoch", epoch=1, delivered_fraction=1.0)
        assert [event.seq for event in log] == [0, 1]
        line = log.events[0].to_json()
        record = json.loads(line)
        assert record == {"delivered_fraction": 0.75, "epoch": 0,
                          "kind": "epoch", "schema": EVENT_SCHEMA_VERSION,
                          "seq": 0}
        # Canonical form: sorted keys, no whitespace — NDJSON is diffable.
        assert line == json.dumps(record, sort_keys=True,
                                  separators=(",", ":"))
        assert log.to_ndjson().count("\n") == 2

    def test_payload_may_not_shadow_envelope_keys(self):
        log = EventLog()
        with pytest.raises(ValueError, match="envelope"):
            log.emit("epoch", seq=3)
        with pytest.raises(ValueError, match="envelope"):
            log.emit("epoch", schema=2, epoch=0)
        assert len(log) == 0

    def test_subscribe_cancel_and_replay(self):
        log = EventLog()
        log.emit("a")
        seen = []
        subscription = log.subscribe(lambda event: seen.append(event.kind))
        log.emit("b")
        subscription.cancel()
        assert not subscription.active
        log.emit("c")
        assert seen == ["b"]
        # A late subscriber with replay sees the backlog first.
        replayed = []
        with log.subscribe(lambda event: replayed.append(event.kind),
                           replay=True):
            log.emit("d")
        log.emit("e")  # after context exit: not delivered
        assert replayed == ["a", "b", "c", "d"]

    def test_nested_emit_keeps_log_order_canonical(self):
        log = EventLog()

        def derive(event):
            if event.kind == "trigger":
                log.emit("derived", cause=event.seq)

        log.subscribe(derive)
        log.emit("trigger")
        assert [(event.seq, event.kind) for event in log] == [
            (0, "trigger"), (1, "derived")]
        assert log.events[1].payload["cause"] == 0

    def test_tail_is_a_strictly_after_cursor(self):
        log = EventLog()
        for index in range(4):
            log.emit("tick", n=index)
        # Strictly after the cursor: tail(last_seen) never re-serves
        # last_seen, so stitched pages have no duplicates.
        assert [event.payload["n"] for event in log.tail(1)] == [2, 3]
        assert [event.payload["n"] for event in log.tail(-1)] == [0, 1, 2, 3]
        assert log.tail() == tuple(log.events)
        assert log.tail(log.events[-1].seq) == ()
        assert log.tail(99) == ()

    def test_tail_property_no_gaps_no_dupes_under_nested_emits(self):
        # Example-sized twin of the Hypothesis property below, kept here
        # so a plain -k TestEventLog run still covers the cursor contract.
        log = EventLog()
        log.subscribe(lambda event: log.emit("echo", cause=event.seq)
                      if event.kind == "outer" else None)
        cursor, seen = -1, []
        for _ in range(3):
            log.emit("outer")
            page = log.tail(cursor)
            seen.extend(event.seq for event in page)
            if page:
                cursor = page[-1].seq
        assert seen == [event.seq for event in log]

    def test_drain_extend_roundtrip_is_byte_identical(self):
        worker = EventLog()
        worker.emit("unit_started", unit=0)
        worker.emit("epoch", epoch=0, delivered_fraction=1.0)
        expected = worker.to_ndjson()
        batch = worker.drain_raw()
        assert len(worker) == 0
        parent = EventLog()
        parent.extend_raw(batch)
        assert parent.to_ndjson() == expected

    def test_write_ndjson(self, tmp_path):
        log = EventLog()
        log.emit("a", x=1)
        path = tmp_path / "events.ndjson"
        log.write_ndjson(str(path))
        assert path.read_text() == log.to_ndjson()


# -- the tail cursor contract, property-tested --------------------------------------
#
# ``tail(since_seq)`` is strictly-after: a consumer that stitches pages by
# always passing the last seq it saw reconstructs the canonical stream
# exactly once, in order — no gaps, no duplicates — even while subscribers
# emit nested events mid-delivery.  derandomize=True pins the example
# stream, so CI failures reproduce locally from the same seed.

TAIL_SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=100, **TAIL_SETTINGS)
@given(
    nested=st.lists(st.integers(min_value=0, max_value=3),
                    min_size=0, max_size=25),
    cursor=st.integers(min_value=-2, max_value=120),
)
def test_tail_cursor_property(nested, cursor):
    log = EventLog()

    def fan_out(event):
        # A subscriber that emits while being notified (the detector
        # pattern): nested events must land in seq order, not re-order
        # or duplicate anything a concurrent cursor consumer sees.
        if event.kind == "outer":
            for index in range(event.payload["fan"]):
                log.emit("nested", cause=event.seq, index=index)

    log.subscribe(fan_out)
    stitched = []
    last_seen = -1
    for fan in nested:
        log.emit("outer", fan=fan)
        page = log.tail(last_seen)
        stitched.extend(event.seq for event in page)
        if page:
            last_seen = page[-1].seq
    # The log's seq numbers are contiguous from 0 in log order...
    assert [event.seq for event in log] == list(range(len(log)))
    # ...and incremental cursor consumption saw each exactly once, in order.
    assert stitched == list(range(len(log)))
    # Any one-shot cursor read is exactly "everything strictly after".
    expected = [seq for seq in range(len(log)) if seq > cursor]
    assert [event.seq for event in log.tail(cursor)] == expected
    # Page stitching with a bounded page size agrees with the one-shot read.
    paged, position = [], cursor
    while True:
        page = log.tail(position)[:3]
        if not page:
            break
        paged.extend(event.seq for event in page)
        position = page[-1].seq
    assert paged == expected


class TestTelemetryWiring:
    def test_events_are_opt_in(self):
        assert Telemetry().events is None
        assert isinstance(Telemetry(events=True).events, EventLog)
        shared = EventLog()  # empty, falsy via __len__ — must still wire up
        assert Telemetry(events=shared).events is shared

    def test_emit_is_a_noop_without_a_log(self):
        Telemetry().emit("epoch", epoch=0)
        NullTelemetry().emit("epoch", epoch=0)
        telemetry = Telemetry(events=True)
        telemetry.emit("epoch", epoch=0)
        assert [event.kind for event in telemetry.events] == ["epoch"]


# -- determinism: obs never participates, fan-in is exact --------------------------


class TestStreamDeterminism:
    def test_results_identical_with_obs_and_detectors_enabled(self):
        plain = make_e14().run()
        observed = make_e14(telemetry=_obs_telemetry()).run()
        assert canonical_result_bytes(observed) == canonical_result_bytes(plain)

    def test_serial_and_pooled_streams_are_byte_identical(self):
        telemetries = [_obs_telemetry() for _ in range(3)]
        serial = make_e14(telemetry=telemetries[0]).run()
        pooled_1 = ProcessPoolCampaignExecutor(
            make_e14(telemetry=telemetries[1]), n_workers=1).run()
        pooled_4 = ProcessPoolCampaignExecutor(
            make_e14(telemetry=telemetries[2]), n_workers=4).run()
        assert canonical_result_bytes(pooled_1) == canonical_result_bytes(serial)
        assert canonical_result_bytes(pooled_4) == canonical_result_bytes(serial)
        streams = [telemetry.events.to_ndjson() for telemetry in telemetries]
        assert streams[1] == streams[0]
        assert streams[2] == streams[0]
        # Verdicts ride in the same stream, at the same positions.
        reference = [event.seq for event in verdicts(telemetries[0].events)]
        for telemetry in telemetries[1:]:
            assert [event.seq for event in verdicts(telemetry.events)] \
                == reference

    def test_campaign_lifecycle_frames_the_stream(self):
        runner = make_e14(telemetry=Telemetry(trace=False, events=True))
        kinds_live = []
        runner.telemetry.events.subscribe(
            lambda event: kinds_live.append(event.kind))
        runner.run()
        log = runner.telemetry.events
        assert log.events[0].kind == "campaign_started"
        assert log.events[-1].kind == "campaign_complete"
        assert log.events[-1].payload["units"] == runner.replicas
        # The subscription saw every event live, in log order — the
        # replacement for get_current_state() polling loops.
        assert kinds_live == [event.kind for event in log]
        assert kinds_live.count("unit_started") == runner.replicas
        assert kinds_live.count("unit_complete") == runner.replicas


# -- detector semantics on synthetic streams ---------------------------------------


def _start(log, sites=("s0", "s1"), slo=0.1):
    log.emit("timeline_started", epochs=10, clients=100, sites=list(sites),
             epoch_seconds=900.0, latency_slo_seconds=slo)


def _epoch(log, epoch, served, active=None, p95=0.05):
    log.emit("epoch", epoch=epoch, delivered_fraction=1.0,
             demand_multiplier=1.0, latency_p95_seconds=p95,
             latency_slo_violations=0.0, sites_in_service=len(served),
             sites_warming=0, site_served=list(served),
             site_active=list(True for _ in served) if active is None
             else list(active))


class TestBlackHoleDetector:
    def _attached(self):
        log = EventLog()
        attach_detectors(log, [BlackHoleDetector()])
        return log

    def test_one_black_holed_epoch_alarms_with_onset(self):
        log = self._attached()
        _start(log)
        _epoch(log, 0, [1.0, 1.0])
        _epoch(log, 1, [0.0, 1.0])
        payloads = [event.payload for event in verdicts(log)]
        assert payloads == [{
            "detector": "black_hole", "site": "s0", "site_index": 0,
            "onset_epoch": 1, "epoch": 1, "served": 0.0}]

    def test_catalogue_grade_degradation_never_alarms(self):
        # 0.4 is the catalogue's deepest legitimate capacity degradation.
        log = self._attached()
        _start(log)
        for epoch in range(20):
            _epoch(log, epoch, [0.4, 1.0])
        assert verdicts(log) == ()

    def test_drained_sites_are_masked(self):
        # An autoscaler scale-down serves nothing but is not a black hole.
        log = self._attached()
        _start(log)
        for epoch in range(5):
            _epoch(log, epoch, [1.0, 0.0], active=[True, False])
        assert verdicts(log) == ()

    def test_recovery_rearms_for_a_second_outage(self):
        log = self._attached()
        _start(log)
        for epoch, served in enumerate([0.0, 0.0, 0.0, 1.0, 0.0]):
            _epoch(log, epoch, [served, 1.0])
        onsets = [event.payload["onset_epoch"] for event in verdicts(log)]
        assert onsets == [0, 4]

    def test_shared_onset_emits_a_regional_verdict(self):
        log = self._attached()
        _start(log, sites=("s0", "s1", "s2"))
        _epoch(log, 0, [1.0, 1.0, 1.0])
        _epoch(log, 1, [0.0, 0.0, 1.0])
        regional = [event.payload for event in verdicts(log)
                    if event.payload["detector"] == "black_hole_region"]
        assert regional == [{
            "detector": "black_hole_region", "sites": ["s0", "s1"],
            "site_indices": [0, 1], "onset_epoch": 1, "epoch": 1}]


class TestSloBreachDetector:
    def _attached(self, min_epochs=3):
        log = EventLog()
        attach_detectors(log, [SloBreachDetector(min_epochs=min_epochs)])
        return log

    def test_breach_needs_consecutive_epochs(self):
        log = self._attached()
        _start(log, slo=0.1)
        # A two-epoch spike is not a breach...
        for epoch, p95 in enumerate([0.2, 0.2, 0.05, 0.2, 0.2, 0.2]):
            _epoch(log, epoch, [1.0], p95=p95)
        payloads = [event.payload for event in verdicts(log)]
        assert len(payloads) == 1
        assert payloads[0]["detector"] == "slo_breach"
        assert payloads[0]["onset_epoch"] == 3
        assert payloads[0]["epoch"] == 5
        assert payloads[0]["consecutive_epochs"] == 3

    def test_one_verdict_per_episode_and_rearm(self):
        log = self._attached(min_epochs=2)
        _start(log, slo=0.1)
        series = [0.2, 0.2, 0.2, 0.05, 0.2, 0.2]
        for epoch, p95 in enumerate(series):
            _epoch(log, epoch, [1.0], p95=p95)
        onsets = [event.payload["onset_epoch"] for event in verdicts(log)]
        assert onsets == [0, 4]


class TestAutoscaleOscillationDetector:
    def _attached(self, **kwargs):
        log = EventLog()
        attach_detectors(log, [AutoscaleOscillationDetector(**kwargs)])
        return log

    @staticmethod
    def _autoscale(log, epoch, *actions):
        log.emit("autoscale", epoch=epoch, actions=list(actions))

    def test_flip_flopping_fires_once_per_window(self):
        log = self._attached(window=6, min_flips=3)
        _start(log)
        moves = ["up s4 warming", "drain s4", "up s4 warming", "drain s4"]
        for epoch, action in enumerate(moves):
            self._autoscale(log, epoch, action)
        payloads = [event.payload for event in verdicts(log)]
        assert len(payloads) == 1
        assert payloads[0]["detector"] == "autoscale_oscillation"
        assert payloads[0]["flips"] == 3
        # Continued thrash within the cooldown window stays silent.
        for epoch, action in enumerate(moves, start=len(moves)):
            self._autoscale(log, epoch, action)
        assert len(verdicts(log)) == 1

    def test_monotonic_scaling_is_silent(self):
        log = self._attached(window=6, min_flips=3)
        _start(log)
        for epoch in range(8):
            self._autoscale(log, epoch, f"up s{epoch} warming")
        for epoch in range(8, 16):
            self._autoscale(log, epoch, f"drain s{epoch - 8}")
        assert verdicts(log) == ()


# -- detector grading against ground truth -----------------------------------------


def _unit_segments(log):
    """Split a merged campaign stream into per-unit event lists."""
    segments = {}
    current = None
    for event in log:
        if event.kind == "unit_started":
            current = event.payload["unit"]
            segments[current] = []
        if current is not None:
            segments[current].append(event)
        if event.kind == "unit_complete":
            current = None
    return segments


class TestBlackHoleLocalization:
    def test_verdicts_match_the_compiled_fault_schedule(self):
        """Exact localization, zero false positives, graded per unit.

        Elevated outage rates so every replica carries several scheduled
        windows; the detector must name exactly the scheduled sites at
        exactly the scheduled onsets — for every site commissioned when
        its window starts (drained spares fail invisibly, correctly).
        """
        processes = (CorrelatedRegionalOutage(
            outages_per_epoch=0.15, group_fraction=0.25,
            mean_downtime_epochs=2.0),)
        runner = make_e14(epochs=12, replicas=4, nominal_sites=8,
                          max_sites=10, regions=4, processes=processes,
                          telemetry=_obs_telemetry())
        runner.run()
        segments = _unit_segments(runner.telemetry.events)
        assert len(segments) == runner.replicas
        windows_checked = 0
        for unit in runner.unit_specs():
            events = segments[unit.index]
            sites = next(event.payload["sites"] for event in events
                         if event.kind == "timeline_started")
            schedule = compile_schedule(
                runner.processes, seed=unit.event_seed,
                epochs=runner.epochs, site_names=sites,
                rng_transform=unit.rng_transform)
            epochs = {event.payload["epoch"]: event.payload
                      for event in events if event.kind == "epoch"}
            black_hole = [event.payload for event in events
                          if event.kind == "detector"
                          and event.payload["detector"] == "black_hole"]
            # Zero false positives: every verdict inside a scheduled window.
            for payload in black_hole:
                assert schedule.covers(payload["site_index"],
                                       payload["onset_epoch"]), payload
            # Exact localization: one verdict per commissioned window,
            # naming the onset epoch.
            for site_index, start, _until in schedule.downtime:
                if not epochs[start]["site_active"][site_index]:
                    continue  # not commissioned: invisible by contract
                hits = [payload for payload in black_hole
                        if payload["site_index"] == site_index
                        and payload["onset_epoch"] == start]
                assert len(hits) == 1, (site_index, start, hits)
                windows_checked += 1
        assert windows_checked >= 5  # the grading actually graded something


class TestCatalogueFalsePositives:
    @pytest.mark.parametrize("scenario", scenario_names())
    def test_black_hole_verdicts_only_inside_scripted_failures(self, scenario):
        telemetry = _obs_telemetry()
        timeline = build_scenario(scenario, clients=2000, seed=21,
                                  telemetry=telemetry)
        scripted = {(event.site, event.at_epoch)
                    for event in timeline.events
                    if isinstance(event, SiteFailure)}
        timeline.run()
        for event in verdicts(telemetry.events):
            payload = event.payload
            if payload["detector"] != "black_hole":
                continue
            assert (payload["site"], payload["onset_epoch"]) in scripted, \
                payload

    def test_regional_outage_scenario_is_fully_localized(self):
        telemetry = _obs_telemetry()
        timeline = build_scenario("regional_outage", clients=2000, seed=21,
                                  telemetry=telemetry)
        scripted = {(event.site, event.at_epoch)
                    for event in timeline.events
                    if isinstance(event, SiteFailure)}
        assert scripted
        timeline.run()
        named = {(payload["site"], payload["onset_epoch"])
                 for payload in (event.payload
                                 for event in verdicts(telemetry.events))
                 if payload["detector"] == "black_hole"}
        assert named == scripted
        regional = [event.payload for event in verdicts(telemetry.events)
                    if event.payload["detector"] == "black_hole_region"]
        assert len(regional) == 1
        assert sorted(regional[0]["sites"]) == sorted(s for s, _ in scripted)


# -- the perf-regression gate and report tooling -----------------------------------


def _load_tool(name):
    path = Path(__file__).resolve().parents[2] / "tools" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _artifact(mean):
    return {
        "machine_info": {"cpu": {"brand_raw": "test-cpu"}},
        "benchmarks": [{
            "fullname": "benchmarks/bench_x.py::test_one",
            "stats": {"mean": mean, "stddev": mean / 20, "rounds": 5},
        }],
    }


class TestPerfGate:
    def test_seed_then_pass_then_2x_slowdown_fails(self, tmp_path):
        perf_gate = _load_tool("perf_gate")
        baseline_dir = tmp_path / "baselines"
        artifact = tmp_path / "BENCH_x.json"
        artifact.write_text(json.dumps(_artifact(0.1)))
        assert perf_gate.main(["--baseline-dir", str(baseline_dir),
                               "--update", str(artifact)]) == 0
        pinned = json.loads((baseline_dir / "BENCH_x.json").read_text())
        assert pinned["machine"] == "test-cpu"
        assert pinned["benchmarks"][0]["mean"] == pytest.approx(0.1)
        # Fresh == baseline: passes.
        assert perf_gate.main(["--baseline-dir", str(baseline_dir),
                               str(artifact)]) == 0
        # A genuine 2x slowdown always fails (tolerance is < 2x).
        artifact.write_text(json.dumps(_artifact(0.2)))
        assert perf_gate.main(["--baseline-dir", str(baseline_dir),
                               str(artifact)]) == 1

    def test_tolerances_file_overrides_per_benchmark(self, tmp_path):
        perf_gate = _load_tool("perf_gate")
        baseline_dir = tmp_path / "baselines"
        artifact = tmp_path / "BENCH_x.json"
        artifact.write_text(json.dumps(_artifact(0.1)))
        perf_gate.main(["--baseline-dir", str(baseline_dir), "--update",
                        str(artifact)])
        artifact.write_text(json.dumps(_artifact(0.2)))
        (baseline_dir / "tolerances.json").write_text(json.dumps(
            {"benchmarks/bench_x.py::test_one": 2.5}))
        assert perf_gate.main(["--baseline-dir", str(baseline_dir),
                               str(artifact)]) == 0

    def test_missing_baseline_and_vanished_benchmark_fail(self, tmp_path):
        perf_gate = _load_tool("perf_gate")
        baseline_dir = tmp_path / "baselines"
        artifact = tmp_path / "BENCH_x.json"
        artifact.write_text(json.dumps(_artifact(0.1)))
        # No baseline committed yet: the gate demands one.
        assert perf_gate.main(["--baseline-dir", str(baseline_dir),
                               str(artifact)]) == 1
        perf_gate.main(["--baseline-dir", str(baseline_dir), "--update",
                        str(artifact)])
        # A pinned benchmark that vanished from the fresh run fails too.
        gone = _artifact(0.1)
        gone["benchmarks"][0]["fullname"] = "benchmarks/bench_x.py::test_two"
        artifact.write_text(json.dumps(gone))
        assert perf_gate.main(["--baseline-dir", str(baseline_dir),
                               str(artifact)]) == 1

    def test_missing_artifact_exits_2(self, tmp_path, capsys):
        perf_gate = _load_tool("perf_gate")
        assert perf_gate.main([str(tmp_path / "BENCH_nope.json")]) == 2
        assert "BENCH_nope.json" in capsys.readouterr().err


class TestPerfReport:
    def test_missing_artifact_exits_2_naming_the_file(self, tmp_path, capsys):
        perf_report = _load_tool("perf_report")
        present = tmp_path / "BENCH_ok.json"
        present.write_text(json.dumps(_artifact(0.1)))
        code = perf_report.main([str(present),
                                 str(tmp_path / "BENCH_gone.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "BENCH_gone.json" in captured.err
        # Nothing rendered: a partial table would read as complete.
        assert "bench" not in captured.out
