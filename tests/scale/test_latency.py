"""The latency subsystem: proxy shape, composition, timelines, E15 campaigns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WorkloadError
from repro.scale import (
    ClientPopulation,
    ConstantLoad,
    DiurnalLoad,
    FluidTimeline,
    LatencyCampaignRunner,
    LatencyModel,
    evaluate_latency,
    provisioned_fleet,
    run_latency_cost_frontier,
)
from repro.scale.latency import _weighted_percentiles
from repro.scale.population import elastic_mix
from repro.scale.scenario import ScaleScenario
from repro.scale.solver import solve_allocation


def solved_epoch(clients=8_000, sites=4, *, mult=1.0, seed=9, mix=None,
                 headroom=1.2):
    population = ClientPopulation(clients, mix=mix, seed=seed)
    fleet = provisioned_fleet(population, sites, headroom=headroom)
    template = ScaleScenario(population, fleet).build_template()
    epoch = template.instantiate(np.full(template.base_demands.shape, mult))
    allocation = solve_allocation(epoch.problem)
    return template, epoch, allocation


class TestLatencyModel:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            LatencyModel(service_cv=-1.0)
        with pytest.raises(WorkloadError):
            LatencyModel(max_utilization=1.0)
        with pytest.raises(WorkloadError):
            LatencyModel(geography_seconds=-0.1)
        with pytest.raises(WorkloadError):
            LatencyModel(region_site_rtt_seconds=np.array([[-1.0]]))

    def test_queueing_factor_shape(self):
        model = LatencyModel(service_cv=0.0)
        assert model.queueing_factor(np.array(0.0)) == 0.0
        # M/D/1 at rho = 0.5: half a service time of mean wait.
        assert model.queueing_factor(np.array(0.5)) == pytest.approx(0.5)
        # cv=1 doubles the P-K wait.
        assert LatencyModel(service_cv=1.0).queueing_factor(
            np.array(0.5)) == pytest.approx(1.0)

    @settings(max_examples=60, deadline=None)
    @given(rho1=st.floats(0.0, 1.5), rho2=st.floats(0.0, 1.5),
           cv=st.floats(0.0, 3.0))
    def test_queueing_factor_monotone_and_finite(self, rho1, rho2, cv):
        model = LatencyModel(service_cv=cv)
        lo, hi = sorted((rho1, rho2))
        f_lo = float(model.queueing_factor(np.array(lo)))
        f_hi = float(model.queueing_factor(np.array(hi)))
        assert 0.0 <= f_lo <= f_hi
        assert np.isfinite(f_hi)  # the clamp keeps saturated queues finite

    def test_allen_cunneen_defaults_to_pollaczek_khinchine(self):
        # The G/G/1 generalization must change nothing at arrival_cv=1:
        # the default proxy stays the M/G/1-PS shape, bit for bit.
        from repro.scale.latency import (
            allen_cunneen_factor,
            pollaczek_khinchine_factor,
        )

        rho = np.linspace(0.0, 1.2, 25)
        for cv in (0.0, 0.7, 1.0, 2.5):
            assert np.array_equal(
                allen_cunneen_factor(rho, 1.0, cv, 0.98),
                pollaczek_khinchine_factor(rho, cv, 0.98),
            )
        assert np.array_equal(
            LatencyModel(service_cv=cv).queueing_factor(rho),
            pollaczek_khinchine_factor(rho, cv, 0.98),
        )

    @settings(max_examples=60, deadline=None)
    @given(rho=st.floats(0.0, 1.5),
           ca1=st.floats(0.0, 4.0), ca2=st.floats(0.0, 4.0),
           cs1=st.floats(0.0, 6.0), cs2=st.floats(0.0, 6.0))
    def test_allen_cunneen_monotone_in_both_variabilities(self, rho, ca1, ca2,
                                                          cs1, cs2):
        # The heavy-tailed option's property: more variability (arrival or
        # service) never shortens the wait, at any load.
        from repro.scale.latency import allen_cunneen_factor

        ca_lo, ca_hi = sorted((ca1, ca2))
        cs_lo, cs_hi = sorted((cs1, cs2))
        lo = float(allen_cunneen_factor(np.array(rho), ca_lo, cs_lo, 0.98))
        hi = float(allen_cunneen_factor(np.array(rho), ca_hi, cs_hi, 0.98))
        assert 0.0 <= lo <= hi
        assert np.isfinite(hi)

    def test_heavy_tailed_constructor(self):
        model = LatencyModel.heavy_tailed(service_scv=16.0)
        assert model.service_cv == pytest.approx(4.0)
        # Heavy tails deepen every queue relative to the default proxy.
        rho = np.array(0.6)
        assert model.queueing_factor(rho) > LatencyModel().queueing_factor(rho)
        with pytest.raises(WorkloadError):
            LatencyModel.heavy_tailed(service_scv=-1.0)
        with pytest.raises(WorkloadError):
            LatencyModel(arrival_cv=-0.5)

    def test_latency_policy_inverts_the_allen_cunneen_shape(self):
        # for_model must copy arrival_cv so the controller's inversion is
        # the exact inverse of a bursty-arrival proxy too.
        from repro.scale.autoscale import TargetLatencyPolicy

        model = LatencyModel(service_cv=0.5, arrival_cv=2.0)
        policy = TargetLatencyPolicy.for_model(model, target_p95_seconds=0.06)
        assert policy.arrival_cv == 2.0
        rho = 0.55
        assert policy._queue_factor(rho) == pytest.approx(
            float(model.queueing_factor(np.array(rho))))

    def test_base_rtt_geometry_is_deterministic_and_bounded(self):
        model = LatencyModel()
        first = model.base_rtt_matrix(8, 16)
        second = model.base_rtt_matrix(8, 16)
        assert np.array_equal(first, second)
        assert first.shape == (8, 16)
        assert (first >= model.min_rtt_seconds).all()
        assert (first <= model.min_rtt_seconds + model.geography_seconds).all()

    def test_base_rtt_override_must_match_shape(self):
        model = LatencyModel(region_site_rtt_seconds=np.zeros((2, 3)))
        assert model.base_rtt_matrix(2, 3).shape == (2, 3)
        with pytest.raises(WorkloadError):
            model.base_rtt_matrix(3, 2)


class TestWeightedPercentiles:
    def test_simple_weighted_median(self):
        values = np.array([1.0, 2.0, 3.0])
        weights = np.array([1.0, 1.0, 8.0])
        p50, p99 = _weighted_percentiles(values, weights, (0.5, 0.99))
        assert p50 == 3.0 and p99 == 3.0

    def test_uniform_weights_match_steps(self):
        values = np.array([10.0, 20.0, 30.0, 40.0])
        weights = np.ones(4)
        p25, p75 = _weighted_percentiles(values, weights, (0.25, 0.75))
        assert p25 == 10.0 and p75 == 30.0

    def test_empty_is_zero(self):
        assert _weighted_percentiles(np.array([]), np.array([]), (0.5,)) == [0.0]


class TestEvaluateLatency:
    def test_covers_every_client_and_stays_positive(self):
        template, epoch, allocation = solved_epoch()
        result = evaluate_latency(template, epoch, allocation, LatencyModel())
        assert result.total_clients == template.population.n_clients
        assert (result.flow_delay_seconds > 0).all()
        by_class = result.by_class()
        assert set(by_class) == set(template.population.mix.names)
        assert sum(c.clients for c in by_class.values()) == result.total_clients
        for summary in by_class.values():
            assert (summary.p50_seconds <= summary.p95_seconds
                    <= summary.p99_seconds <= summary.worst_seconds)

    @settings(max_examples=20, deadline=None)
    @given(lo=st.floats(0.2, 1.0), hi=st.floats(1.0, 2.5))
    def test_latency_monotone_in_utilization(self, lo, hi):
        # The property the proxy exists for: more load through the same
        # structure can only raise every percentile of the delay.
        template, epoch_lo, alloc_lo = solved_epoch(mult=lo)
        _, epoch_hi, alloc_hi = solved_epoch(mult=hi)
        model = LatencyModel()
        low = evaluate_latency(template, epoch_lo, alloc_lo, model)
        high = evaluate_latency(template, epoch_hi, alloc_hi, model)
        for quantile in (0.5, 0.95, 0.99):
            assert high.percentile(quantile) >= low.percentile(quantile) - 1e-12
        assert high.mean_seconds >= low.mean_seconds - 1e-12

    def test_slo_violations_monotone_in_threshold(self):
        template, epoch, allocation = solved_epoch(mult=1.5, headroom=0.9)
        result = evaluate_latency(template, epoch, allocation, LatencyModel())
        fractions = [result.slo_violation_fraction(slo)
                     for slo in (0.02, 0.04, 0.08, 0.5)]
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert fractions == sorted(fractions, reverse=True)
        with pytest.raises(WorkloadError):
            result.slo_violation_fraction(0.0)

    def test_congestion_displaces_the_tail(self):
        template, epoch_lo, alloc_lo = solved_epoch(mult=0.5, headroom=0.9)
        _, epoch_hi, alloc_hi = solved_epoch(mult=2.0, headroom=0.9)
        model = LatencyModel()
        quiet = evaluate_latency(template, epoch_lo, alloc_lo, model)
        busy = evaluate_latency(template, epoch_hi, alloc_hi, model)
        assert busy.percentile(0.95) > quiet.percentile(0.95)


class TestTimelineLatency:
    def timeline(self, *, latency=None, slo=0.05, clients=8_000, mix=None):
        population = ClientPopulation(clients, mix=mix, seed=3)
        fleet = provisioned_fleet(population, 4, headroom=1.0)
        return FluidTimeline(
            population, fleet, epochs=10,
            load=DiurnalLoad(trough=0.5, peak=1.3),
            latency=latency, latency_slo_seconds=slo,
        )

    def test_no_model_records_zeros(self):
        result = self.timeline().run()
        assert not result.has_latency
        assert (result.latency_p95_seconds == 0.0).all()
        assert "p95 ms" not in result.series()

    def test_model_records_percentiles_and_series(self):
        result = self.timeline(latency=LatencyModel()).run()
        assert result.has_latency
        assert (result.latency_p95_seconds > 0).all()
        for record in result.records:
            assert (record.latency_p50_seconds <= record.latency_p95_seconds
                    <= record.latency_p99_seconds)
            assert 0.0 <= record.latency_slo_violations <= 1.0
        series = result.series()
        assert "p95 ms" in series and "slo viol" in series
        assert result.worst_latency_p95_seconds == result.latency_p95_seconds.max()
        assert 0.0 <= result.latency_slo_attainment() <= 1.0

    def test_latency_identical_warm_and_cold(self):
        warm = self.timeline(latency=LatencyModel()).run()
        cold_timeline = self.timeline(latency=LatencyModel())
        cold_timeline.warm_start = False
        cold = cold_timeline.run()
        assert np.allclose(warm.latency_p95_seconds, cold.latency_p95_seconds,
                           rtol=1e-9)

    def test_elastic_mix_timeline_is_deterministic(self):
        first = self.timeline(latency=LatencyModel(), mix=elastic_mix()).run()
        second = self.timeline(latency=LatencyModel(), mix=elastic_mix()).run()
        assert np.array_equal(first.latency_p95_seconds,
                              second.latency_p95_seconds)
        assert np.array_equal(first.goodput_bps, second.goodput_bps)

    def test_bad_slo_rejected(self):
        with pytest.raises(WorkloadError):
            self.timeline(slo=0.0)


class TestLatencyCampaign:
    def test_e15_smoke(self):
        runner = LatencyCampaignRunner(clients=6_000, epochs=30, replicas=3,
                                       seed=11, nominal_sites=6, max_sites=8)
        result = runner.run()
        assert result.run_id.startswith("latency-")
        assert result.report.experiment_id == "E15"
        assert "latency p95 (ms)" in result.distributions
        assert "replica worst p95 (ms)" in result.distributions
        pooled = result.distributions["latency p95 (ms)"]
        assert pooled.samples == 3 * 30
        assert pooled.p50 > 0
        for record in result.records:
            assert record.mean_latency_p95_seconds > 0
            assert 0.0 <= record.latency_slo_attainment <= 1.0
        rendered = result.report.render()
        assert "latency vs cost" in rendered

    def test_e15_deterministic(self):
        make = lambda: LatencyCampaignRunner(
            clients=6_000, epochs=24, replicas=3, seed=13,
            nominal_sites=6, max_sites=8).run()
        assert make().distributions == make().distributions

    def test_latency_cost_frontier_orders_costs(self):
        frontier = run_latency_cost_frontier(
            targets_p95_seconds=(0.045, 0.2), clients=6_000, epochs=24,
            replicas=2, seed=11, nominal_sites=6, max_sites=10,
        )
        assert len(frontier.points) == 2
        tight, loose = frontier.points
        # A tighter delay target can never be cheaper to hold.
        assert tight.mean_cost_usd >= loose.mean_cost_usd
        assert "E15" == frontier.report.experiment_id

    def test_bad_target_rejected(self):
        with pytest.raises(WorkloadError):
            LatencyCampaignRunner(target_p95_seconds=0.0)
