"""Golden round-trip tests: the data-file catalogue vs the legacy builders.

Every catalogue scenario must rebuild, from its JSON document, a timeline
whose run is byte-identical (``canonical_result_bytes``) to the former
python builder's — the declarative control plane may not move a single
float.  Schema evolution is exercised too: unknown fields fail loudly with
their full path instead of being silently dropped.
"""

import json

import pytest

from reference_builders import REFERENCE_BUILDERS
from repro.scale.catalogue import CATALOGUE, CATALOGUE_DATA_DIR, scenario_names
from repro.scale.config import (
    ConfigError,
    ScenarioConfig,
    dump_config,
    load_config,
)
from repro.scale.parallel import canonical_result_bytes

CLIENTS = 2_000
SEED = 2006


def test_reference_builders_cover_the_catalogue():
    assert sorted(REFERENCE_BUILDERS) == sorted(scenario_names())


def test_data_files_cover_the_catalogue_in_order():
    files = sorted(CATALOGUE_DATA_DIR.glob("*.json"))
    assert [load_config(path).name for path in files] == scenario_names()


@pytest.mark.parametrize("name", sorted(REFERENCE_BUILDERS))
def test_scenario_byte_identical_to_legacy_builder(name):
    legacy = REFERENCE_BUILDERS[name](clients=CLIENTS, seed=SEED,
                                      cost_model=None).run()
    declarative = CATALOGUE[name].config.build(clients=CLIENTS, seed=SEED).run()
    assert (canonical_result_bytes(declarative)
            == canonical_result_bytes(legacy))


@pytest.mark.parametrize("name", sorted(REFERENCE_BUILDERS))
def test_document_round_trips_through_json(name):
    config = CATALOGUE[name].config
    assert ScenarioConfig.from_json(config.to_json()) == config


def test_file_round_trip(tmp_path):
    config = CATALOGUE["flash_crowd"].config
    path = tmp_path / "flash_crowd.json"
    dump_config(config, path)
    assert load_config(path) == config
    assert path.read_text(encoding="utf-8") == config.to_json()


def test_unknown_top_level_field_fails_with_path():
    data = CATALOGUE["flash_crowd"].config.to_dict()
    data["surprise_knob"] = 3
    with pytest.raises(ConfigError, match="surprise_knob") as excinfo:
        ScenarioConfig.from_dict(data)
    assert excinfo.value.field_path == "surprise_knob"


def test_unknown_nested_field_fails_with_path():
    data = CATALOGUE["flash_crowd"].config.to_dict()
    data["fleet"]["coolness"] = "max"
    with pytest.raises(ConfigError, match="unknown field") as excinfo:
        ScenarioConfig.from_dict(data)
    assert excinfo.value.field_path == "fleet.coolness"


def test_unknown_kind_fails_with_path():
    data = CATALOGUE["flash_crowd"].config.to_dict()
    data["load"]["kind"] = "warp_drive"
    with pytest.raises(ConfigError, match="warp_drive") as excinfo:
        ScenarioConfig.from_dict(data)
    assert excinfo.value.field_path == "load.kind"


def test_future_schema_version_is_rejected():
    data = CATALOGUE["flash_crowd"].config.to_dict()
    data["schema_version"] = 99
    with pytest.raises(ConfigError, match="schema version") as excinfo:
        ScenarioConfig.from_dict(data)
    assert excinfo.value.field_path.endswith("schema_version")


def test_data_files_are_canonical_json():
    # The on-disk bytes are exactly what dump_config would write today, so
    # a codec change that silently re-shapes the documents fails here.
    for path in sorted(CATALOGUE_DATA_DIR.glob("*.json")):
        config = load_config(path)
        assert path.read_text(encoding="utf-8") == config.to_json(), path.name
        # and the document is stable plain JSON
        assert json.loads(config.to_json()) == config.to_dict()
