"""Closed-loop autoscaling: policies, bounds, warm-up, churn, and dollars."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WorkloadError
from repro.scale import (
    Autoscaler,
    AutoscaleObservation,
    ClientPopulation,
    ConstantLoad,
    DiurnalLoad,
    FlashCrowdLoad,
    FluidTimeline,
    PredictiveLoadPolicy,
    ProvisioningCostModel,
    SiteFailure,
    SiteRecovery,
    StepPolicy,
    TargetLatencyPolicy,
    TargetUtilizationPolicy,
    elastic_fleet,
)


def observation(*, served=10, committed=10, mean=0.6, peak=0.7,
                delivered=1.0, multiplier=1.0, epoch=5):
    return AutoscaleObservation(
        epoch=epoch, served_sites=served, committed=committed,
        mean_utilization=mean, peak_utilization=peak,
        delivered_fraction=delivered, demand_multiplier=multiplier,
    )


def autoscaled_timeline(*, clients=8_000, max_sites=12, nominal=8,
                        epochs=24, seed=3, policy=None, load=None,
                        events=(), min_sites=2, warmup=1, cooldown=0):
    population = ClientPopulation(clients, seed=seed)
    fleet = elastic_fleet(population, max_sites, nominal_sites=nominal,
                          at_utilization=0.6)
    autoscaler = Autoscaler(
        policy or TargetUtilizationPolicy(target=0.6, deadband=0.05),
        min_sites=min_sites, warmup_epochs=warmup, cooldown_epochs=cooldown,
    )
    return FluidTimeline(population, fleet, epochs=epochs, load=load,
                         events=events, autoscaler=autoscaler)


class TestPolicies:
    def test_target_utilization_inverts_toward_the_set_point(self):
        policy = TargetUtilizationPolicy(target=0.5, deadband=0.05)
        # Running at 1.0 with 10 serving sites: need 20 to sit at 0.5.
        assert policy.desired_sites(observation(mean=1.0), lambda lead: 1.0) == 20
        # Running cold: shed capacity.
        assert policy.desired_sites(observation(mean=0.25), lambda lead: 1.0) == 5

    def test_target_utilization_deadband_holds_committed(self):
        policy = TargetUtilizationPolicy(target=0.6, deadband=0.1)
        held = policy.desired_sites(
            observation(mean=0.65, committed=13), lambda lead: 1.0)
        assert held == 13

    def test_step_policy_hysteresis(self):
        policy = StepPolicy(high=0.8, low=0.3, step=2)
        grow = policy.desired_sites(observation(peak=0.9, committed=10), None)
        hold = policy.desired_sites(observation(peak=0.5, committed=10), None)
        shrink = policy.desired_sites(observation(peak=0.2, committed=10), None)
        assert (grow, hold, shrink) == (12, 10, 8)

    def test_predictive_policy_uses_the_forecast(self):
        policy = PredictiveLoadPolicy(target=0.6, lead_epochs=2, deadband=0.02)
        # Flat forecast at current load: util already on target, hold.
        hold = policy.desired_sites(
            observation(mean=0.6, committed=10), lambda lead: 1.0)
        # Demand doubling in two epochs: provision for it now.
        grow = policy.desired_sites(
            observation(mean=0.6, committed=10), lambda lead: 2.0)
        assert hold == 10
        assert grow == 20

    def test_invalid_policies_rejected(self):
        with pytest.raises(WorkloadError):
            TargetUtilizationPolicy(target=0.0)
        with pytest.raises(WorkloadError):
            TargetUtilizationPolicy(target=0.5, deadband=0.6)
        with pytest.raises(WorkloadError):
            StepPolicy(high=0.3, low=0.8)
        with pytest.raises(WorkloadError):
            PredictiveLoadPolicy(lead_epochs=0)
        with pytest.raises(WorkloadError):
            Autoscaler(StepPolicy(), min_sites=0)
        with pytest.raises(WorkloadError):
            Autoscaler(StepPolicy(), min_sites=5, max_sites=4)
        with pytest.raises(WorkloadError):
            TargetLatencyPolicy(target_p95_seconds=0.0)
        with pytest.raises(WorkloadError):
            TargetLatencyPolicy(utilization_ceiling=1.0)
        with pytest.raises(WorkloadError):
            TargetLatencyPolicy(deadband_fraction=1.0)


class TestTargetLatencyPolicy:
    def test_holds_without_latency_telemetry(self):
        policy = TargetLatencyPolicy(target_p95_seconds=0.06)
        obs = observation(committed=9)  # latency_p95_seconds defaults to 0
        assert policy.desired_sites(obs, lambda lead: 1.0) == 9

    def test_scales_up_when_the_p95_blows_the_target(self):
        policy = TargetLatencyPolicy(target_p95_seconds=0.04,
                                     deadband_fraction=0.1)
        slow = AutoscaleObservation(
            epoch=5, served_sites=10, committed=10, mean_utilization=0.85,
            peak_utilization=0.9, delivered_fraction=1.0,
            demand_multiplier=1.0, latency_p95_seconds=0.12,
        )
        assert policy.desired_sites(slow, lambda lead: 1.0) > 10

    def test_sheds_capacity_when_far_below_target(self):
        policy = TargetLatencyPolicy(target_p95_seconds=0.2,
                                     deadband_fraction=0.1,
                                     utilization_ceiling=0.9)
        fast = AutoscaleObservation(
            epoch=5, served_sites=12, committed=12, mean_utilization=0.3,
            peak_utilization=0.35, delivered_fraction=1.0,
            demand_multiplier=1.0, latency_p95_seconds=0.05,
        )
        assert policy.desired_sites(fast, lambda lead: 1.0) < 12

    def test_ceiling_limits_shedding_when_target_is_unreachable(self):
        # The target is below what geography alone costs: the policy must
        # settle at the utilization ceiling, not divide by a negative need.
        policy = TargetLatencyPolicy(target_p95_seconds=0.001,
                                     utilization_ceiling=0.8, gain=1.0)
        obs = AutoscaleObservation(
            epoch=5, served_sites=10, committed=10, mean_utilization=0.4,
            peak_utilization=0.45, delivered_fraction=1.0,
            demand_multiplier=1.0, latency_p95_seconds=0.05,
        )
        # rho/rho_ceiling = 0.4/0.8: the policy wants half the fleet, and
        # never fewer than the ceiling allows.
        assert policy.desired_sites(obs, lambda lead: 1.0) == 5

    def test_default_gain_damps_the_correction(self):
        # Same observation at the default half gain: only half the gap is
        # taken per action, the anti-hunting behaviour the geometry needs.
        policy = TargetLatencyPolicy(target_p95_seconds=0.001,
                                     utilization_ceiling=0.8)
        obs = AutoscaleObservation(
            epoch=5, served_sites=10, committed=10, mean_utilization=0.4,
            peak_utilization=0.45, delivered_fraction=1.0,
            demand_multiplier=1.0, latency_p95_seconds=0.05,
        )
        assert policy.desired_sites(obs, lambda lead: 1.0) == 8
        # Tiny corrections are held outright (actuator deadband).
        near = AutoscaleObservation(
            epoch=5, served_sites=10, committed=6, mean_utilization=0.4,
            peak_utilization=0.45, delivered_fraction=1.0,
            demand_multiplier=1.0, latency_p95_seconds=0.05,
        )
        assert policy.desired_sites(near, lambda lead: 1.0) == 6
        with pytest.raises(WorkloadError):
            TargetLatencyPolicy(gain=0.0)

    def test_deadband_holds(self):
        policy = TargetLatencyPolicy(target_p95_seconds=0.05,
                                     deadband_fraction=0.2)
        near = AutoscaleObservation(
            epoch=5, served_sites=10, committed=11, mean_utilization=0.6,
            peak_utilization=0.65, delivered_fraction=1.0,
            demand_multiplier=1.0, latency_p95_seconds=0.055,
        )
        assert policy.desired_sites(near, lambda lead: 1.0) == 11

    @settings(max_examples=15, deadline=None)
    @given(
        target_ms=st.floats(min_value=30.0, max_value=120.0),
        trough=st.floats(min_value=0.2, max_value=0.8),
        peak=st.floats(min_value=0.9, max_value=1.6),
        warmup=st.integers(min_value=0, max_value=2),
    )
    def test_latency_autoscaler_bounds_hold(self, target_ms, trough, peak,
                                            warmup):
        """Property: the latency controller never breaches min/max either."""
        from repro.scale import LatencyModel

        population = ClientPopulation(3_000, seed=3)
        fleet = elastic_fleet(population, 9, nominal_sites=5,
                              at_utilization=0.6)
        autoscaler = Autoscaler(
            TargetLatencyPolicy(target_p95_seconds=target_ms / 1e3),
            min_sites=3, max_sites=9, warmup_epochs=warmup,
        )
        result = FluidTimeline(
            population, fleet, epochs=18,
            load=DiurnalLoad(trough=trough, peak=peak),
            autoscaler=autoscaler, latency=LatencyModel(),
        ).run()
        for record in result.records:
            committed = record.sites_in_service + record.sites_warming
            assert 3 <= committed <= 9


class TestClosedLoop:
    def test_diurnal_scaling_tracks_the_load(self):
        result = autoscaled_timeline(
            epochs=48, load=DiurnalLoad(trough=0.3, peak=1.2),
            policy=TargetUtilizationPolicy(target=0.6, deadband=0.05),
        ).run()
        sites = result.sites_in_service
        # The fleet breathes: more sites at peak than at trough.
        assert sites.max() > sites.min()
        assert result.total_autoscale_actions > 0
        # Scale events moved clients through the ring.
        assert result.total_clients_remapped > 0

    def test_flash_crowd_triggers_scale_up(self):
        result = autoscaled_timeline(
            epochs=24,
            load=FlashCrowdLoad(base=0.9, spike=3.0, start_seconds=6 * 3600.0,
                                ramp_seconds=3600.0, hold_seconds=6 * 3600.0),
        ).run()
        spike_sites = result.sites_in_service[10:16].max()
        assert spike_sites > result.sites_in_service[0]

    def test_bounds_are_never_violated(self):
        result = autoscaled_timeline(
            epochs=36, min_sites=4, nominal=6, max_sites=10,
            load=DiurnalLoad(trough=0.1, peak=2.0),
        ).run()
        for record in result.records:
            committed = record.sites_in_service + record.sites_warming
            assert 4 <= committed <= 10

    @settings(max_examples=15, deadline=None)
    @given(
        trough=st.floats(min_value=0.05, max_value=0.9),
        spread=st.floats(min_value=1.0, max_value=3.0),
        warmup=st.integers(min_value=0, max_value=3),
        cooldown=st.integers(min_value=0, max_value=2),
        target=st.floats(min_value=0.3, max_value=0.9),
    )
    def test_bounds_hold_for_any_diurnal_and_controller(self, trough, spread,
                                                        warmup, cooldown, target):
        """Property: no load curve or controller tuning breaches min/max."""
        result = autoscaled_timeline(
            clients=3_000, epochs=18, min_sites=3, nominal=5, max_sites=9,
            warmup=warmup, cooldown=cooldown,
            policy=TargetUtilizationPolicy(target=target, deadband=0.04),
            load=DiurnalLoad(trough=trough, peak=min(trough * spread, 1.0)),
        ).run()
        for record in result.records:
            committed = record.sites_in_service + record.sites_warming
            assert 3 <= committed <= 9

    def test_warmup_delays_capacity_arrival(self):
        # A step up at epoch e becomes serving capacity at e + warmup.
        result = autoscaled_timeline(
            epochs=20, warmup=3, cooldown=5,
            load=FlashCrowdLoad(base=0.8, spike=4.0, start_seconds=5 * 3600.0,
                                ramp_seconds=1.0, hold_seconds=10 * 3600.0),
        ).run()
        first_order = next(i for i, record in enumerate(result.records)
                           if any(label.startswith("up") for label in
                                  record.autoscale_actions))
        arrival = next(i for i, record in enumerate(result.records)
                       if any(label.endswith("live") for label in
                              record.autoscale_actions))
        assert arrival == first_order + 3
        warming = result.records[first_order].sites_warming
        assert warming > 0
        # Ordering capacity does not make it serve yet.
        assert result.records[first_order].sites_in_service <= \
            result.records[first_order - 1].sites_in_service

    def test_instant_warmup_activates_same_epoch(self):
        result = autoscaled_timeline(
            epochs=12, warmup=0,
            load=FlashCrowdLoad(base=0.8, spike=4.0, start_seconds=3 * 3600.0,
                                ramp_seconds=1.0, hold_seconds=6 * 3600.0),
        ).run()
        ordered = [record for record in result.records
                   if record.autoscale_actions]
        assert ordered
        assert all(label.endswith("live")
                   for record in ordered for label in record.autoscale_actions
                   if label.startswith("up"))

    def test_cooldown_spaces_actions(self):
        result = autoscaled_timeline(
            epochs=30, cooldown=4,
            load=DiurnalLoad(trough=0.2, peak=1.4),
        ).run()
        decision_epochs = [
            record.epoch for record in result.records
            if any(not label.endswith("live") or label.startswith("drain")
                   for label in record.autoscale_actions)
            and any(label.startswith(("up", "drain", "cancel"))
                    and not label.endswith("live")
                    for label in record.autoscale_actions)
        ]
        assert all(b - a >= 5 for a, b in zip(decision_epochs, decision_epochs[1:]))

    def test_determinism(self):
        first = autoscaled_timeline(load=DiurnalLoad(), seed=11).run()
        second = autoscaled_timeline(load=DiurnalLoad(), seed=11).run()
        assert np.array_equal(first.goodput_bps, second.goodput_bps)
        assert np.array_equal(first.sites_in_service, second.sites_in_service)
        assert first.total_provision_cost == second.total_provision_cost

    def test_rerun_restores_fleet_and_controller_state(self):
        timeline = autoscaled_timeline(load=DiurnalLoad(trough=0.2, peak=1.5))
        snapshot = timeline.fleet.health_snapshot()
        first = timeline.run()
        assert timeline.fleet.health_snapshot() == snapshot
        second = timeline.run()
        assert np.array_equal(first.sites_in_service, second.sites_in_service)


class TestDrainWhileFailed:
    """Churn accounting when failures and autoscaling collide."""

    @staticmethod
    def spike_then_collapse(events, epochs=16):
        # Load rides at 1.1x for five hours (failure happens there), then
        # collapses to 0.5x: the step controller drains one site per epoch,
        # and the failed-but-active site05 must be the first victim.  The
        # high threshold sits above the failure-epoch peak so no scale-up
        # pipeline muddies the drain accounting.
        return autoscaled_timeline(
            epochs=epochs, nominal=8, min_sites=6, warmup=1,
            policy=StepPolicy(high=0.97, low=0.45, step=1),
            load=FlashCrowdLoad(base=0.5, spike=2.2, start_seconds=-3600.0,
                                ramp_seconds=1.0, hold_seconds=6 * 3600.0),
            events=events,
        ).run()

    def test_scale_down_prefers_failed_sites_and_costs_no_churn(self):
        result = self.spike_then_collapse([SiteFailure(3, "site05")])
        drains = [(record.epoch, label)
                  for record in result.records
                  for label in record.autoscale_actions
                  if label.startswith("drain")]
        assert drains, "demand collapse should have triggered drains"
        first_drain_epoch, first_drain = drains[0]
        # The dead site goes first, and dropping it never touches the ring.
        assert first_drain == "drain site05"
        assert result.records[first_drain_epoch].clients_remapped == 0
        assert result.records[first_drain_epoch].ring_moved_fraction == 0.0
        # Later drains retire serving sites, which does move clients.
        later = [epoch for epoch, label in drains[1:]]
        assert any(result.records[epoch].clients_remapped > 0 for epoch in later)

    def test_recovery_of_drained_site_does_not_rejoin_ring(self):
        result = self.spike_then_collapse(
            [SiteFailure(3, "site05"), SiteRecovery(12, "site05")]
        )
        drained_first = any(label == "drain site05"
                            for record in result.records[:12]
                            for label in record.autoscale_actions)
        assert drained_first
        # The recovery epoch moves no clients: the site stays drained.
        assert result.records[12].clients_remapped == 0
        assert result.records[12].ring_moved_fraction == 0.0
        assert result.records[12].sites_in_service == \
            result.records[11].sites_in_service


class TestProvisioningCost:
    def test_epoch_cost_charges_capacity_and_churn(self):
        model = ProvisioningCostModel(core_hour_usd=1.0, gbps_hour_usd=0.0,
                                      site_hour_usd=0.0,
                                      remap_usd_per_thousand=5.0)
        cost = model.epoch_cost(cores=10.0, uplink_bps=0.0, sites=3,
                                epoch_seconds=1800.0, clients_remapped=2000)
        assert cost == pytest.approx(10.0 * 0.5 + 5.0 * 2.0)

    def test_negative_prices_rejected(self):
        with pytest.raises(WorkloadError):
            ProvisioningCostModel(core_hour_usd=-1.0)

    def test_autoscaled_run_is_cheaper_than_static_peak_fleet(self):
        population = ClientPopulation(8_000, seed=3)
        load = DiurnalLoad(trough=0.25, peak=1.1)
        scaled = autoscaled_timeline(load=load, epochs=48).run()
        static_fleet = elastic_fleet(population, 12, nominal_sites=12,
                                     at_utilization=0.6)
        static = FluidTimeline(population, static_fleet, epochs=48,
                               load=load).run()
        assert scaled.total_provision_cost < static.total_provision_cost

    def test_cost_is_recorded_without_an_autoscaler(self):
        population = ClientPopulation(2_000, seed=3)
        fleet = elastic_fleet(population, 4, nominal_sites=4)
        result = FluidTimeline(population, fleet, epochs=6,
                               load=ConstantLoad(0.8)).run()
        assert result.total_provision_cost > 0
        assert all(record.sites_in_service == 4 for record in result.records)
