"""The live campaign monitor: byte-identity, SSE replay, endpoint shapes.

The load-bearing contract is negative: attaching a
:class:`repro.scale.monitor.MonitorServer` to a campaign — or tearing it
down mid-run, gracefully or not — must leave ``canonical_result_bytes``
and the canonical NDJSON event stream byte-identical to the monitor-less
run.  The monitor subscribes; it never writes.
"""

import json
import threading
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro.scale import (
    EVENT_SCHEMA_VERSION,
    MonitorServer,
    StochasticCampaignRunner,
    Telemetry,
    attach_detectors,
    canonical_result_bytes,
)


def make_e14(**kwargs):
    kwargs.setdefault("clients", 900)
    kwargs.setdefault("nominal_sites", 4)
    kwargs.setdefault("max_sites", 6)
    kwargs.setdefault("epochs", 6)
    kwargs.setdefault("replicas", 4)
    kwargs.setdefault("seed", 7)
    telemetry = kwargs.setdefault("telemetry", Telemetry(trace=False, events=True))
    attach_detectors(telemetry.events)
    return StochasticCampaignRunner(**kwargs)


def http_get(url, *, headers=None, timeout=60):
    request = Request(url, headers=headers or {})
    with urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read().decode()


def sse_frames(text):
    """Parsed SSE stream -> (canonical [(id, kind, data)], heartbeat datas)."""
    canonical, heartbeats = [], []
    for frame in text.strip().split("\n\n"):
        fields = {}
        for line in frame.splitlines():
            if line.startswith(":"):
                continue
            key, value = line.split(": ", 1)
            fields[key] = value
        if "id" in fields:
            canonical.append((int(fields["id"]), fields["event"], fields["data"]))
        elif "data" in fields:
            heartbeats.append(fields["data"])
    return canonical, heartbeats


@pytest.fixture(scope="module")
def baseline():
    """Monitor-less E14: the bytes every monitored run must reproduce."""
    runner = make_e14()
    result = runner.run()
    return canonical_result_bytes(result), runner.telemetry.events.to_ndjson()


class TestMonitorIdentity:
    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_monitored_run_is_byte_identical(self, baseline, n_workers):
        runner = make_e14()
        with MonitorServer.attach(runner.telemetry, runner=runner) as monitor:
            result = runner.run_parallel(n_workers=n_workers, monitor=monitor)
            assert canonical_result_bytes(result) == baseline[0]
            assert runner.telemetry.events.to_ndjson() == baseline[1]

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_detach_mid_campaign_is_byte_identical(self, baseline, n_workers):
        runner = make_e14()
        monitor = MonitorServer.attach(runner.telemetry, runner=runner)
        seen = []

        def detach_on_second_unit(event):
            if event.kind == "unit_complete":
                seen.append(event.seq)
                if len(seen) == 2:
                    monitor.detach()

        runner.telemetry.events.subscribe(detach_on_second_unit)
        try:
            result = runner.run_parallel(n_workers=n_workers, monitor=monitor)
        finally:
            monitor.close()
        assert len(seen) == 4
        assert canonical_result_bytes(result) == baseline[0]
        assert runner.telemetry.events.to_ndjson() == baseline[1]

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_hard_shutdown_mid_campaign_is_byte_identical(self, baseline,
                                                          n_workers):
        """monitor.close() mid-run — server gone, campaign unharmed."""
        runner = make_e14()
        monitor = MonitorServer.attach(runner.telemetry, runner=runner)
        url = monitor.url

        def kill_on_first_unit(event):
            if event.kind == "unit_complete":
                monitor.close()

        runner.telemetry.events.subscribe(kill_on_first_unit)
        result = runner.run_parallel(n_workers=n_workers, monitor=monitor)
        assert canonical_result_bytes(result) == baseline[0]
        assert runner.telemetry.events.to_ndjson() == baseline[1]
        with pytest.raises(OSError):
            http_get(url + "/healthz", timeout=5)

    def test_nested_detector_emits_mirror_in_canonical_order(self):
        """Detectors subscribe before the monitor and emit *nested* events,
        so the monitor hears a verdict before the event that triggered it;
        the served stream must still be in canonical log order."""
        telemetry = Telemetry(trace=False, events=True)
        log = telemetry.events

        def fake_detector(event):
            if event.kind == "epoch":
                log.emit("detector", detector="fake",
                         epoch=event.payload["epoch"])

        log.subscribe(fake_detector)
        with MonitorServer.attach(telemetry) as monitor:
            log.emit("campaign_started", experiment="X", units=1)
            log.emit("epoch", epoch=0)
            log.emit("epoch", epoch=1)
            log.emit("campaign_complete", experiment="X", units=1)
            _, _, body = http_get(
                monitor.url + "/events?since_seq=-1&limit=100")
            assert body == log.to_ndjson()
            kinds = [json.loads(line)["kind"]
                     for line in body.splitlines()]
            assert kinds == ["campaign_started", "epoch", "detector",
                             "epoch", "detector", "campaign_complete"]

    def test_heartbeats_are_quarantined(self, baseline):
        runner = make_e14()
        with MonitorServer.attach(runner.telemetry, runner=runner) as monitor:
            runner.run_parallel(n_workers=4, monitor=monitor)
            # started + complete per unit, on the live feed only.
            assert monitor.live_len() == 2 * 4
            progress = monitor.progress()
            assert progress["heartbeats"] == 2 * 4
        ndjson = runner.telemetry.events.to_ndjson()
        assert "unit_heartbeat" not in ndjson
        assert ndjson == baseline[1]


class TestEndpoints:
    @pytest.fixture(scope="class")
    def served(self):
        """A completed monitored campaign, server still up."""
        runner = make_e14()
        with MonitorServer.attach(runner.telemetry, runner=runner) as monitor:
            runner.run_parallel(n_workers=2, monitor=monitor)
            yield monitor, runner.telemetry

    def test_healthz(self, served):
        monitor, telemetry = served
        status, _, body = http_get(monitor.url + "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["mounted"] is True
        assert health["events"] == len(telemetry.events.events)

    def test_metrics_is_prometheus_text(self, served):
        monitor, telemetry = served
        status, headers, body = http_get(monitor.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert body == telemetry.metrics.prometheus_text()
        assert "# TYPE campaign_replicas_completed counter" in body

    def test_events_pages_with_strictly_after_cursor(self, served):
        monitor, telemetry = served
        expected = telemetry.events.to_ndjson()
        stitched, cursor = [], -1
        while True:
            _, headers, body = http_get(
                monitor.url + f"/events?since_seq={cursor}&limit=7")
            stitched.append(body)
            cursor = int(headers["X-Next-Seq"])
            if headers["X-Remaining"] == "0":
                break
        assert "".join(stitched) == expected

    def test_progress_shape(self, served):
        monitor, telemetry = served
        _, _, body = http_get(monitor.url + "/progress")
        progress = json.loads(body)
        assert progress["complete"] is True
        assert progress["units_done"] == progress["units_total"] == 4
        assert progress["units_in_flight"] == []
        assert progress["events"]["total"] == len(telemetry.events.events)
        assert progress["events"]["last_seq"] == \
            telemetry.events.events[-1].seq
        assert progress["eta_seconds"] == 0.0
        assert "epoch" in progress["events"]["by_kind"]

    def test_verdicts_filters_to_detector_events(self, served):
        monitor, telemetry = served
        _, _, body = http_get(monitor.url + "/verdicts")
        served_kinds = [json.loads(line)["kind"]
                        for line in body.splitlines() if line]
        expected = [event for event in telemetry.events.events
                    if event.kind == "detector"]
        assert all(kind == "detector" for kind in served_kinds)
        assert len(served_kinds) == len(expected)

    def test_unknown_path_is_404_and_bad_cursor_is_400(self, served):
        monitor, _ = served
        with pytest.raises(HTTPError) as missing:
            http_get(monitor.url + "/nope")
        assert missing.value.code == 404
        with pytest.raises(HTTPError) as bad:
            http_get(monitor.url + "/events?since_seq=banana")
        assert bad.value.code == 400


class TestStreamReplay:
    def test_last_event_id_resumes_exactly_once(self, baseline):
        """The ISSUE acceptance bar: reconnecting with ``Last-Event-ID``
        replays the canonical sequence exactly once, in order."""
        runner = make_e14()
        with MonitorServer.attach(runner.telemetry, runner=runner) as monitor:
            runner.run_parallel(n_workers=2, monitor=monitor)
            expected = runner.telemetry.events.to_ndjson().splitlines()

            first_n = 5
            _, _, text = http_get(monitor.url + f"/stream?limit={first_n}")
            first, _ = sse_frames(text)
            assert [seq for seq, _, _ in first] == list(range(first_n))

            _, _, text = http_get(
                monitor.url + f"/stream?limit={len(expected) - first_n}",
                headers={"Last-Event-ID": str(first[-1][0])})
            rest, _ = sse_frames(text)

        replayed = first + rest
        assert [seq for seq, _, _ in replayed] == list(range(len(expected)))
        assert [data for _, _, data in replayed] == expected
        assert [kind for _, kind, _ in replayed] == \
            [json.loads(line)["kind"] for line in expected]
        for _, _, data in replayed:
            assert json.loads(data)["schema"] == EVENT_SCHEMA_VERSION

    def test_stream_tails_a_live_campaign(self):
        """A client that connects before the run sees events as they land."""
        runner = make_e14()
        with MonitorServer.attach(runner.telemetry, runner=runner) as monitor:
            box = {}

            def tail():
                _, _, box["text"] = http_get(
                    monitor.url + "/stream?limit=3", timeout=120)

            client = threading.Thread(target=tail, daemon=True)
            client.start()
            runner.run_parallel(n_workers=2, monitor=monitor)
            client.join(timeout=120)
            assert not client.is_alive()
            canonical, _ = sse_frames(box["text"])
            assert [seq for seq, _, _ in canonical] == [0, 1, 2]
            assert json.loads(canonical[0][2])["kind"] == "campaign_started"
