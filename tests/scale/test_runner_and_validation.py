"""Scenario solving, the campaign runner, and fluid-vs-packet cross-validation."""

import numpy as np
import pytest

from repro.analysis.experiments import run_fleet_scale
from repro.analysis.report import ExperimentReport
from repro.scale import (
    ClientPopulation,
    CryptoCostModel,
    FleetScaleRunner,
    NeutralizerFleet,
    ScaleScenario,
    cross_validate,
    cross_validate_latency,
)
from repro.units import mbps


def small_scenario(clients=5_000, sites=4, **kwargs):
    population = ClientPopulation(clients, seed=21)
    fleet = NeutralizerFleet.build(sites, **kwargs)
    return ScaleScenario(population, fleet)


class TestScenario:
    def test_uncongested_demand_is_met(self):
        result = small_scenario().solve()
        assert result.delivered_fraction == pytest.approx(1.0)
        assert result.total_goodput_bps == pytest.approx(result.total_demand_bps)
        assert (result.cpu_utilization <= 1.0 + 1e-9).all()

    def test_tiny_fleet_congests_and_stays_feasible(self):
        # One weak site for thousands of video-heavy clients: the solver must
        # shed demand, never exceed capacity.
        result = small_scenario(clients=20_000, sites=1, cores=0.25,
                                uplink_bps=mbps(200)).solve()
        assert result.delivered_fraction < 1.0
        assert (result.cpu_utilization <= 1.0 + 1e-9).all()
        assert (result.uplink_utilization <= 1.0 + 1e-9).all()
        assert max(result.cpu_utilization.max(),
                   result.uplink_utilization.max()) == pytest.approx(1.0, abs=1e-6)

    def test_site_failure_redistributes_and_costs_capacity(self):
        population = ClientPopulation(30_000, seed=5)
        fleet = NeutralizerFleet.build(4, cores=0.5, uplink_bps=mbps(500))
        healthy = ScaleScenario(population, fleet).solve()
        fleet.fail_site("site01")
        degraded = ScaleScenario(population, fleet).solve()
        assert degraded.clients_per_site[1] == 0
        assert degraded.clients_per_site.sum() == population.n_clients
        assert degraded.total_goodput_bps < healthy.total_goodput_bps
        assert healthy.clients_per_site[1] > 0

    def test_congestion_is_fair_per_client_not_per_group(self):
        # Regression: groups are different sizes (regions are deliberately
        # uneven), and max-min must equalize what each *client* gets, not
        # what each group aggregate gets — a 10x larger group behind the same
        # bottleneck must not end up with 10x less per client.
        from repro.scale import PopulationMix, voip_class
        from repro.scale.solver import max_min_allocation

        population = ClientPopulation(
            30_000, mix=PopulationMix(classes=(voip_class(),), fractions=(1.0,)),
            regions=6, seed=8,
        )
        fleet = NeutralizerFleet.build(1, uplink_bps=mbps(20))
        scenario = ScaleScenario(population, fleet)
        problem = scenario.build_problem()
        allocation = max_min_allocation(problem)
        satisfaction = allocation.satisfaction(problem)
        assert satisfaction[0] < 0.99  # genuinely congested
        assert np.allclose(satisfaction, satisfaction[0], rtol=1e-6)
        sizes = np.bincount(population.region_index)
        assert sizes.max() > 2 * sizes.min()  # groups really are uneven

    def test_solve_is_deterministic(self):
        first = small_scenario().solve()
        second = small_scenario().solve()
        assert first.goodput_bps == second.goodput_bps
        assert np.array_equal(first.clients_per_site, second.clients_per_site)


class TestRunner:
    def test_sweep_records_and_state(self):
        runner = FleetScaleRunner(client_counts=(500, 2_000), n_sites=2, seed=3)
        assert not runner.get_current_state().done
        result = runner.run()
        assert runner.get_current_state().done
        assert [record.clients for record in result.records] == [500, 2_000]
        assert result.largest_point.clients == 2_000
        assert result.run_id.startswith("fleet-scale-")
        assert "E12" == result.report.experiment_id
        assert result.report.render()

    def test_goodput_grows_with_population_until_saturation(self):
        runner = FleetScaleRunner(client_counts=(1_000, 8_000, 64_000),
                                  n_sites=2, cores_per_site=0.5,
                                  uplink_bps=mbps(300), seed=3)
        result = runner.run()
        goodputs = [sum(record.goodput_bps.values()) for record in result.records]
        assert goodputs[0] < goodputs[1]
        # The largest point must be capacity-bound, not demand-bound.
        assert result.records[-1].delivered_fraction < 1.0

    def test_sweep_is_deterministic_from_seed(self):
        make = lambda: FleetScaleRunner(client_counts=(500, 4_000), n_sites=3, seed=17).run()
        first, second = make(), make()
        for a, b in zip(first.records, second.records):
            assert a.goodput_bps == b.goodput_bps
            assert a.delivered_fraction == b.delivered_fraction

    def test_failed_sites_option(self):
        runner = FleetScaleRunner(client_counts=(2_000,), n_sites=3,
                                  failed_sites=("site00",), seed=3)
        record = runner.run().records[0]
        assert record.delivered_fraction <= 1.0

    def test_calibrated_cost_model_plugs_in(self):
        model = CryptoCostModel.calibrated(iterations=10)
        runner = FleetScaleRunner(client_counts=(1_000,), n_sites=2,
                                  cost_model=model, seed=3)
        assert runner.run().records[0].goodput_bps


class TestCrossValidation:
    def test_fluid_matches_packet_level_within_10_percent(self):
        # The subsystem's acceptance criterion: both regimes of the shared
        # dumbbell scenario agree between the event engine and the fluid model.
        result = cross_validate(duration_seconds=3.0)
        assert result.within_tolerance, result.failure_message()
        assert result.failures == []
        names = [arm.name for arm in result.arms]
        assert "unloaded" in names and "congested" in names
        congested = next(arm for arm in result.arms if arm.name == "congested")
        assert congested.packet_goodput_pps < congested.offered_pps

    def test_failures_name_the_arm_and_the_side(self):
        # The satellite fix: a tolerance breach must say which arm broke
        # and whether the fluid side was high or low, not just the error.
        from repro.scale.validate import CrossValidationResult, ValidationArm

        high = ValidationArm(name="congested", offered_pps=100.0,
                             packet_goodput_pps=50.0, fluid_goodput_pps=70.0,
                             wire_bytes_per_packet=250.0)
        low = ValidationArm(name="unloaded", offered_pps=100.0,
                            packet_goodput_pps=100.0, fluid_goodput_pps=99.0,
                            wire_bytes_per_packet=250.0)
        result = CrossValidationResult(
            arms=[high, low], report=ExperimentReport("E12v", "t"))
        assert not result.within_tolerance
        assert len(result.failures) == 1
        message = result.failure_message()
        assert "congested" in message and "fluid high" in message
        assert "40.0%" in message and "unloaded" not in message

    def test_latency_proxy_matches_packet_level_within_15_percent(self):
        # The PR 4 acceptance criterion: mean path delay agrees between the
        # event engine and the M/G/1 proxy on a light and a loaded transient.
        result = cross_validate_latency(duration_seconds=4.0)
        assert result.within_tolerance, result.failures
        names = [arm.name for arm in result.arms]
        assert names == ["light", "loaded"]
        light, loaded = result.arms
        assert light.bottleneck_utilization < loaded.bottleneck_utilization
        # The loaded arm must have a material queueing share, otherwise the
        # test only validates propagation arithmetic.
        assert loaded.measured_mean_seconds > light.measured_mean_seconds * 1.2
        assert all(arm.samples > 100 for arm in result.arms)
        assert "E15v" in result.report.render()

    def test_latency_validation_failure_names_the_arm(self):
        from repro.scale.validate import (
            LatencyValidationArm,
            LatencyValidationResult,
        )

        arm = LatencyValidationArm(name="loaded", bottleneck_utilization=0.8,
                                   samples=500, measured_mean_seconds=0.020,
                                   predicted_mean_seconds=0.030)
        result = LatencyValidationResult(
            arms=[arm], report=ExperimentReport("E15v", "t"))
        assert not result.within_tolerance
        assert "loaded" in result.failures[0]
        assert "proxy high" in result.failures[0]

    def test_zero_goodput_arm_raises_a_named_error_not_a_division(self):
        # The satellite bugfix: a zero packet-level measurement used to
        # surface as an infinite relative error; it must instead fail
        # loudly, naming the arm and the scenario.
        from repro.exceptions import WorkloadError
        from repro.scale.validate import ValidationArm

        arm = ValidationArm(name="congested", offered_pps=360.0,
                            packet_goodput_pps=0.0, fluid_goodput_pps=100.0,
                            wire_bytes_per_packet=250.0)
        with pytest.raises(WorkloadError) as excinfo:
            _ = arm.relative_error
        message = str(excinfo.value)
        assert "congested" in message and "dumbbell" in message

    def test_zero_delay_latency_arm_raises_a_named_error(self):
        from repro.exceptions import WorkloadError
        from repro.scale.validate import LatencyValidationArm

        arm = LatencyValidationArm(name="light", bottleneck_utilization=0.3,
                                   samples=0, measured_mean_seconds=0.0,
                                   predicted_mean_seconds=0.010)
        with pytest.raises(WorkloadError) as excinfo:
            _ = arm.relative_error
        message = str(excinfo.value)
        assert "light" in message and "dumbbell" in message

    def test_zero_demand_fluid_arm_raises_a_named_error(self):
        from repro.exceptions import WorkloadError
        from repro.scale.validate import _solve_fluid_arm

        with pytest.raises(WorkloadError, match="fluid arm.*dumbbell"):
            _solve_fluid_arm(clients=4, rate_pps=0.0, wire_bits=2000.0,
                             bottleneck_rate_bps=600_000.0)

    def test_e12_wrapper_combines_sweep_and_validation(self):
        result = run_fleet_scale(client_counts=(500, 2_000), n_sites=2,
                                 seed=3, validate=False)
        assert result.validation is None and not result.validated
        assert result.sweep.largest_point.clients == 2_000
        assert "E12" in result.report.render()
