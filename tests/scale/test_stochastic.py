"""Stochastic event processes and the E14 Monte-Carlo campaign runner."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.scale import (
    AttackOnset,
    CorrelatedRegionalOutage,
    PoissonSiteFailures,
    SiteFailure,
    SiteRecovery,
    StochasticCampaignRunner,
    compile_events,
    default_processes,
    run_churn_slo_frontier,
)
from repro.scale.timeline import CapacityDegradation

SITES = [f"site{i:02d}" for i in range(10)]


def compiled(processes=None, *, seed=42, epochs=80, site_names=None):
    return compile_events(
        processes if processes is not None else default_processes(
            failure_rate=0.02, outage_rate=0.03, attack_rate=0.04),
        seed=seed, epochs=epochs,
        site_names=site_names or SITES,
    )


class TestEventProcesses:
    def test_compiled_events_are_deterministic_from_seed(self):
        first, second = compiled(seed=9), compiled(seed=9)
        assert first == second
        assert first != compiled(seed=10)

    def test_events_stay_within_horizon_and_sites(self):
        events = compiled(epochs=50)
        assert events, "rates this high must produce events"
        for event in events:
            assert 0 <= event.at_epoch < 50
            assert event.site in SITES

    def test_failures_and_recoveries_are_well_formed(self):
        """Per site: alternating fail/recover, strictly ordered, no overlap."""
        events = compiled(epochs=120)
        state = {name: True for name in SITES}  # True = up
        for event in sorted(events, key=lambda e: e.at_epoch):
            if isinstance(event, SiteFailure):
                assert state[event.site], f"{event.site} failed while down"
                state[event.site] = False
            elif isinstance(event, SiteRecovery):
                assert not state[event.site], f"{event.site} recovered while up"
                state[event.site] = True

    def test_overlapping_windows_merge_across_processes(self):
        # Two identical heavy processes: windows must still merge cleanly.
        heavy = PoissonSiteFailures(failures_per_site_epoch=0.2,
                                    mean_downtime_epochs=5.0)
        events = compiled((heavy, heavy), epochs=60)
        per_site = {}
        for event in events:
            per_site.setdefault(event.site, []).append(event)
        for site_events in per_site.values():
            kinds = [type(e) for e in sorted(site_events, key=lambda e: e.at_epoch)]
            for first, second in zip(kinds, kinds[1:]):
                assert first != second, "fail/recover must alternate"

    def test_regional_outage_is_correlated(self):
        outage_only = (CorrelatedRegionalOutage(
            outages_per_epoch=0.1, group_fraction=0.3, mean_downtime_epochs=3.0),)
        events = compiled(outage_only, epochs=60)
        failures = [e for e in events if isinstance(e, SiteFailure)]
        assert failures
        by_epoch = {}
        for event in failures:
            by_epoch.setdefault(event.at_epoch, []).append(event.site)
        # At least one epoch lost a whole 3-site block at once.
        assert any(len(sites) >= 3 for sites in by_epoch.values())

    def test_attack_compiles_to_degradation_windows(self):
        attack_only = (AttackOnset(attacks_per_epoch=0.1, severity=0.4,
                                   mean_duration_epochs=3.0,
                                   sites_hit_fraction=0.5),)
        events = compiled(attack_only, epochs=60)
        assert events
        for event in events:
            assert isinstance(event, CapacityDegradation)
            assert event.factor == 0.4
            assert event.until_epoch > event.at_epoch

    def test_compiled_events_run_through_a_timeline(self):
        from repro.scale import ClientPopulation, FluidTimeline, provisioned_fleet

        population = ClientPopulation(5_000, seed=3)
        fleet = provisioned_fleet(population, 10, headroom=1.4)
        events = compile_events(
            default_processes(failure_rate=0.01, outage_rate=0.02,
                              attack_rate=0.03),
            seed=11, epochs=40,
            site_names=[site.name for site in fleet.sites],
        )
        result = FluidTimeline(population, fleet, epochs=40,
                               events=events).run()
        assert (result.goodput_bps <= result.demand_bps * (1 + 1e-9)).all()
        assert (result.clients_per_site.sum(axis=1) == 5_000).all()

    def test_invalid_processes_rejected(self):
        with pytest.raises(WorkloadError):
            PoissonSiteFailures(failures_per_site_epoch=1.5)
        with pytest.raises(WorkloadError):
            PoissonSiteFailures(mean_downtime_epochs=0.5)
        with pytest.raises(WorkloadError):
            CorrelatedRegionalOutage(group_fraction=0.0)
        with pytest.raises(WorkloadError):
            AttackOnset(severity=1.5)
        with pytest.raises(WorkloadError):
            compile_events((), seed=1, epochs=0, site_names=SITES)
        with pytest.raises(WorkloadError):
            compile_events((), seed=1, epochs=5, site_names=[])


def smoke_campaign(**overrides):
    config = dict(clients=6_000, epochs=40, replicas=5, seed=17,
                  max_sites=12, nominal_sites=8, slo=0.95)
    config.update(overrides)
    return StochasticCampaignRunner(**config)


class TestStochasticCampaign:
    def test_identical_seeds_reproduce_identical_distributions(self):
        first = smoke_campaign().run()
        second = smoke_campaign().run()
        assert first.distributions == second.distributions
        for a, b in zip(first.records, second.records):
            # Everything but wall clock must match bit for bit.
            assert a.event_seed == b.event_seed
            assert a.mean_delivered == b.mean_delivered
            assert a.clients_remapped == b.clients_remapped
            assert a.provision_cost == b.provision_cost

    def test_different_seeds_differ(self):
        first = smoke_campaign().run()
        other = smoke_campaign(seed=18).run()
        assert first.distributions != other.distributions

    def test_distribution_percentiles_are_ordered(self):
        result = smoke_campaign().run()
        for dist in result.distributions.values():
            if dist.tail == "low":
                assert dist.p50 >= dist.p95 >= dist.p99 >= dist.worst
            else:
                assert dist.p50 <= dist.p95 <= dist.p99 <= dist.worst

    def test_campaign_emits_availability_and_churn_vs_slo(self):
        result = smoke_campaign().run()
        assert result.availability.samples == 5 * 40
        assert 0 <= result.availability.p99 <= 1
        points = result.churn_slo_points()
        assert len(points) == 5
        rendered = result.report.render()
        assert "E14" in rendered
        assert "churn vs SLO" in rendered
        assert result.worst_replica.worst_delivered <= result.availability.p50

    def test_progress_state(self):
        runner = smoke_campaign()
        assert not runner.get_current_state().done
        runner.run()
        state = runner.get_current_state()
        assert state.done and state.total_points == 5

    def test_shared_population_must_match(self):
        from repro.scale import ClientPopulation

        with pytest.raises(WorkloadError):
            StochasticCampaignRunner(
                clients=100, population=ClientPopulation(200, seed=1))

    def test_invalid_campaign_rejected(self):
        with pytest.raises(WorkloadError):
            StochasticCampaignRunner(replicas=0)
        with pytest.raises(WorkloadError):
            StochasticCampaignRunner(slo=0.0)


class TestFrontier:
    def test_frontier_sweeps_targets_deterministically(self):
        kwargs = dict(targets=(0.5, 0.8), clients=4_000, epochs=24,
                      replicas=3, seed=13, max_sites=10, nominal_sites=6)
        first = run_churn_slo_frontier(**kwargs)
        second = run_churn_slo_frontier(**kwargs)
        assert first.points == second.points
        assert [point.target_utilization for point in first.points] == [0.5, 0.8]
        assert "frontier" in first.report.render()

    def test_hotter_fleets_cost_less(self):
        result = run_churn_slo_frontier(
            targets=(0.4, 0.9), clients=4_000, epochs=24, replicas=3,
            seed=13, max_sites=10, nominal_sites=6,
        )
        cold, hot = result.points
        assert hot.mean_cost_usd < cold.mean_cost_usd

    def test_empty_targets_rejected(self):
        with pytest.raises(WorkloadError):
            run_churn_slo_frontier(targets=())


class TestVarianceReduction:
    def test_uniform_transforms_preserve_marginals(self):
        from repro.scale import antithetic_uniforms, rotated_uniforms

        rng = np.random.default_rng(11)
        mirrored = antithetic_uniforms(np.random.default_rng(11))
        draws = rng.random(5000)
        flipped = mirrored.random(5000)
        assert np.allclose(draws, 1.0 - flipped)
        rotated = rotated_uniforms(np.random.default_rng(11), 0.3)
        spun = rotated.random(5000)
        assert ((spun >= 0.0) & (spun < 1.0)).all()
        assert abs(spun.mean() - 0.5) < 0.02  # still uniform
        # Non-uniform draws delegate untouched (durations stay geometric).
        assert mirrored.geometric(0.5) >= 1
        with pytest.raises(WorkloadError):
            rotated_uniforms(np.random.default_rng(1), 1.5)

    def test_schemes_are_deterministic_and_distinct(self):
        def campaign(scheme, seed=17):
            return StochasticCampaignRunner(
                clients=3_000, epochs=30, replicas=6, seed=seed,
                max_sites=8, nominal_sites=6, variance_reduction=scheme,
            ).run()

        for scheme in ("iid", "stratified", "antithetic"):
            first, second = campaign(scheme), campaign(scheme)
            assert first.distributions == second.distributions, scheme
        # The schemes allocate randomness differently, so the realized
        # event sequences (and hence distributions) differ between them.
        assert (campaign("iid").distributions
                != campaign("antithetic").distributions)

    def test_iid_default_matches_previous_allocation(self):
        # The default must stay bit-compatible: explicitly passing "iid"
        # is a no-op relative to not passing anything.
        default = StochasticCampaignRunner(
            clients=3_000, epochs=24, replicas=4, seed=19,
            max_sites=8, nominal_sites=6,
        ).run()
        explicit = StochasticCampaignRunner(
            clients=3_000, epochs=24, replicas=4, seed=19,
            max_sites=8, nominal_sites=6, variance_reduction="iid",
        ).run()
        assert default.distributions == explicit.distributions

    def test_unknown_scheme_rejected(self):
        with pytest.raises(WorkloadError, match="variance-reduction"):
            StochasticCampaignRunner(variance_reduction="qmc")

    def test_antithetic_pairs_are_negatively_correlated(self):
        # The mechanism itself, deterministically: within a pair, epochs
        # that fail in one member tend not to fail in the mirror, so the
        # spread of pair-mean event counts is below the iid replica spread.
        def event_counts(scheme):
            campaign = StochasticCampaignRunner(
                clients=3_000, epochs=40, replicas=8, seed=23,
                max_sites=8, nominal_sites=6, variance_reduction=scheme,
            ).run()
            return np.array([record.events_fired
                             for record in campaign.records], dtype=float)

        anti = event_counts("antithetic")
        iid = event_counts("iid")
        pair_means = anti.reshape(-1, 2).mean(axis=1)
        iid_pair_means = iid.reshape(-1, 2).mean(axis=1)
        assert pair_means.std() < iid_pair_means.std()

    def test_compare_variance_reduction_runs_and_reports(self):
        from repro.scale import compare_variance_reduction

        result = compare_variance_reduction(
            clients=2_000, epochs=20, replicas=4, batches=3, seed=29,
            max_sites=8, nominal_sites=6,
        )
        assert set(result.mean_estimator_std) == {"iid", "stratified",
                                                  "antithetic"}
        assert all(std >= 0 for std in result.mean_estimator_std.values())
        assert result.reduction_vs_iid("iid") == pytest.approx(1.0)
        assert "estimator spread" in result.report.render()
        with pytest.raises(WorkloadError):
            compare_variance_reduction(batches=1)
