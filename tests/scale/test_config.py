"""The typed control plane: schema validation, diffs, and live transactions."""

import pytest

from repro.exceptions import WorkloadError
from repro.scale.adversary import AdoptionModel, AdversaryGame, IspStrategy
from repro.scale.autoscale import Autoscaler, StepPolicy, TargetUtilizationPolicy
from repro.scale.catalogue import build_scenario, provisioned_fleet
from repro.scale.config import (
    ConfigError,
    ConfigTransaction,
    FieldChange,
    FleetSpec,
    PopulationSpec,
    ScenarioConfig,
    SiteSpec,
    diff_configs,
)
from repro.scale.costmodel import ProvisioningCostModel
from repro.scale.parallel import canonical_result_bytes
from repro.scale.population import ClientPopulation
from repro.scale.timeline import ConstantLoad, DiurnalLoad, ReconfigEvent

CLIENTS = 300
SEED = 11


def small_config(**overrides) -> ScenarioConfig:
    base = dict(
        name="unit",
        population=PopulationSpec(regions=4),
        fleet=FleetSpec(mode="provisioned", n_sites=4, headroom=1.4),
        epochs=8,
        epoch_seconds=600.0,
        load=ConstantLoad(1.0),
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def autoscaled_config(**overrides) -> ScenarioConfig:
    base = dict(
        fleet=FleetSpec(mode="elastic", max_sites=6, nominal_sites=4,
                        at_utilization=0.6),
        load=DiurnalLoad(trough=0.4, peak=1.2),
        autoscaler=Autoscaler(TargetUtilizationPolicy(target=0.6),
                              min_sites=2, warmup_epochs=1),
    )
    base.update(overrides)
    return small_config(**base)


# -- schema validation ---------------------------------------------------------------


class TestValidation:
    def test_bad_fleet_mode_has_field_path(self):
        with pytest.raises(ConfigError, match="mode") as excinfo:
            FleetSpec(mode="imaginary")
        assert excinfo.value.field_path == "mode"

    def test_bad_nested_value_decodes_with_full_path(self):
        data = small_config().to_dict()
        data["fleet"]["headroom"] = -2.0
        with pytest.raises(ConfigError, match="fleet.headroom") as excinfo:
            ScenarioConfig.from_dict(data)
        assert excinfo.value.field_path == "fleet.headroom"

    def test_wrong_type_has_leaf_path(self):
        data = small_config().to_dict()
        data["fleet"]["n_sites"] = "many"
        with pytest.raises(ConfigError, match="integer") as excinfo:
            ScenarioConfig.from_dict(data)
        assert excinfo.value.field_path == "fleet.n_sites"

    def test_configerror_is_a_workloaderror(self):
        assert issubclass(ConfigError, WorkloadError)

    def test_unknown_scenario_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            build_scenario("definitely_not_a_scenario", clients=CLIENTS)

    def test_site_tier_validated(self):
        with pytest.raises(ConfigError, match="tier") as excinfo:
            SiteSpec(name="a", cores=1.0, uplink_bps=1e9, tier="gold")
        assert excinfo.value.field_path == "tier"

    def test_weights_and_heterogeneous_are_exclusive(self):
        with pytest.raises(ConfigError, match="site_weights"):
            FleetSpec(mode="provisioned", n_sites=2, heterogeneous=True,
                      site_weights=(1.0, 2.0))

    def test_active_sites_must_be_known(self):
        with pytest.raises(ConfigError, match="unknown site") as excinfo:
            FleetSpec(mode="provisioned", n_sites=2,
                      active_sites=("site00", "siteXX"))
        assert excinfo.value.field_path == "active_sites"


# -- heterogeneous sizes and cost tiers ----------------------------------------------


class TestSitesAndTiers:
    def test_site_weights_shape_the_fleet(self):
        population = ClientPopulation(CLIENTS, seed=SEED)
        fleet = provisioned_fleet(population, 3, site_weights=(2.0, 1.0, 1.0))
        cores = [site.cores for site in fleet.sites]
        assert cores[0] == pytest.approx(2 * cores[1])
        assert cores[1] == cores[2]

    def test_weights_must_match_n_sites(self):
        population = ClientPopulation(CLIENTS, seed=SEED)
        with pytest.raises(WorkloadError, match="weights"):
            provisioned_fleet(population, 3, site_weights=(1.0, 2.0))

    def test_spot_tier_is_cheaper_same_physics(self):
        mixed = small_config(fleet=FleetSpec(
            mode="provisioned", n_sites=4, headroom=1.4,
            tiers=("reserved", "reserved", "spot", "spot")))
        reserved = small_config()
        run_mixed = mixed.build(clients=CLIENTS, seed=SEED).run()
        run_reserved = reserved.build(clients=CLIENTS, seed=SEED).run()
        assert run_mixed.total_provision_cost < run_reserved.total_provision_cost
        assert [rec.goodput_bps for rec in run_mixed.records] == \
            [rec.goodput_bps for rec in run_reserved.records]

    def test_spot_multiplier_prices_the_difference(self):
        model = ProvisioningCostModel()
        split = model.epoch_cost(cores=10.0, uplink_bps=1e9, sites=1,
                                 epoch_seconds=3600.0,
                                 spot_cores=10.0, spot_uplink_bps=1e9,
                                 spot_sites=1)
        full = model.epoch_cost(cores=20.0, uplink_bps=2e9, sites=2,
                                epoch_seconds=3600.0)
        assert split == pytest.approx(
            full / 2 * (1 + model.spot_multiplier))

    def test_explicit_sites_carry_tiers(self):
        config = small_config(fleet=FleetSpec(mode="explicit", sites=(
            SiteSpec(name="metro", cores=8.0, uplink_bps=5e9),
            SiteSpec(name="edge", cores=2.0, uplink_bps=1e9, tier="spot"),
        )))
        fleet = config.fleet.build(ClientPopulation(CLIENTS, seed=SEED), None)
        assert [site.tier for site in fleet.sites] == ["reserved", "spot"]


# -- diffs ---------------------------------------------------------------------------


class TestDiff:
    def test_no_changes_no_diff(self):
        config = small_config()
        assert diff_configs(config, config) == ()

    def test_leaf_change_diffs_with_path(self):
        base = autoscaled_config()
        changed = autoscaled_config(
            autoscaler=Autoscaler(TargetUtilizationPolicy(target=0.6),
                                  min_sites=3, warmup_epochs=1))
        changes = diff_configs(base, changed)
        assert changes == (FieldChange("autoscaler.min_sites", 2, 3),)

    def test_kind_change_is_one_atomic_swap(self):
        base = autoscaled_config()
        changed = autoscaled_config(
            autoscaler=Autoscaler(StepPolicy(high=0.9, low=0.3, step=1),
                                  min_sites=2, warmup_epochs=1))
        changes = diff_configs(base, changed)
        assert [change.path for change in changes] == ["autoscaler.policy"]


# -- transactions --------------------------------------------------------------------


class TestTransaction:
    def test_timeline_without_config_is_rejected(self):
        population = ClientPopulation(CLIENTS, seed=SEED)
        fleet = provisioned_fleet(population, 4)
        from repro.scale.timeline import FluidTimeline
        timeline = FluidTimeline(population, fleet, epochs=4)
        with pytest.raises(ConfigError, match="no ScenarioConfig"):
            ConfigTransaction(timeline, at_epoch=2)

    def test_at_epoch_bounds_checked(self):
        timeline = small_config().build(clients=CLIENTS, seed=SEED)
        with pytest.raises(ConfigError, match="epoch boundary") as excinfo:
            ConfigTransaction(timeline, at_epoch=99)
        assert excinfo.value.field_path == "at_epoch"

    def test_non_whitelisted_change_rejected_with_path(self):
        timeline = small_config().build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=2)
        txn.set("epochs", 20)
        before = tuple(timeline.events)
        with pytest.raises(ConfigError, match="not reconfigurable") as excinfo:
            txn.commit()
        assert excinfo.value.field_path == "epochs"
        assert tuple(timeline.events) == before
        assert timeline.config == small_config()

    def test_invalid_staged_document_rejected_with_path(self):
        timeline = small_config().build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=2)
        txn.set("fleet.headroom", -1.0)
        with pytest.raises(ConfigError) as excinfo:
            txn.commit()
        assert excinfo.value.field_path == "fleet.headroom"
        assert tuple(timeline.events) == ()

    def test_policy_swap_commits_one_reconfig_event(self):
        timeline = autoscaled_config().build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=3)
        txn.set("autoscaler.policy",
                StepPolicy(high=0.9, low=0.3, step=1))
        changes = txn.commit()
        assert [change.path for change in changes] == ["autoscaler.policy"]
        scheduled = [event for event in timeline.events
                     if isinstance(event, ReconfigEvent)]
        assert len(scheduled) == 1
        assert scheduled[0].at_epoch == 3
        result = timeline.run()
        fired = [rec.events for rec in result.records if rec.events]
        assert any("reconfig policy=StepPolicy" in label
                   for labels in fired for label in labels)

    def test_budget_change_alters_the_run(self):
        config = autoscaled_config()
        baseline = config.build(clients=CLIENTS, seed=SEED).run()
        timeline = config.build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=2)
        txn.set("autoscaler.min_sites", 6)
        txn.commit()
        changed = timeline.run()
        assert (canonical_result_bytes(changed)
                != canonical_result_bytes(baseline))
        # from the commit epoch on, the floor binds
        assert all(rec.sites_in_service >= 6
                   for rec in changed.records[4:])

    def test_region_add_and_drain(self):
        config = autoscaled_config()
        timeline = config.build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=4)
        txn.set("fleet.active_sites",
                ["site00", "site01", "site04", "site05"])
        changes = txn.commit()
        assert [change.path for change in changes] == ["fleet.active_sites"]
        event = [event for event in timeline.events
                 if isinstance(event, ReconfigEvent)][0]
        assert event.activate_sites == ("site04", "site05")
        assert event.drain_sites == ("site02", "site03")
        result = timeline.run()
        assert result is not None

    def test_adversary_sensitivity_retune(self):
        config = small_config(adversary=AdversaryGame(
            isp=IspStrategy(aggressiveness=0.8, allow_blanket=False),
            adoption=AdoptionModel(sensitivity=4.0),
        ))
        baseline = config.build(clients=CLIENTS, seed=SEED).run()
        timeline = config.build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=2)
        txn.set("adversary.adoption.sensitivity", 20.0)
        txn.commit()
        changed = timeline.run()
        assert (changed.records[-1].adoption_fraction
                != baseline.records[-1].adoption_fraction)

    def test_adoption_change_without_adversary_rejected(self):
        timeline = autoscaled_config().build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=2)
        with pytest.raises(ConfigError, match="no such field"):
            txn.set("adversary.adoption.sensitivity", 20.0)

    def test_rollback_restores_schedule_and_config(self):
        config = autoscaled_config()
        timeline = config.build(clients=CLIENTS, seed=SEED)
        baseline = canonical_result_bytes(timeline.run())
        txn = ConfigTransaction(timeline, at_epoch=2)
        txn.set("autoscaler.min_sites", 5)
        txn.commit()
        txn.rollback()
        assert timeline.config == config
        assert not any(isinstance(event, ReconfigEvent)
                       for event in timeline.events)
        assert canonical_result_bytes(timeline.run()) == baseline

    def test_commit_rollback_commit_converges(self):
        config = autoscaled_config()
        timeline = config.build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=2)
        txn.set("autoscaler.min_sites", 5)
        txn.commit()
        once = canonical_result_bytes(timeline.run())
        txn.rollback()
        txn.set("autoscaler.min_sites", 5)
        txn.commit()
        assert canonical_result_bytes(timeline.run()) == once

    def test_noop_commit_schedules_nothing(self):
        config = autoscaled_config()
        timeline = config.build(clients=CLIENTS, seed=SEED)
        baseline = canonical_result_bytes(timeline.run())
        txn = ConfigTransaction(timeline, at_epoch=2)
        assert txn.commit() == ()
        assert tuple(timeline.events) == ()
        assert canonical_result_bytes(timeline.run()) == baseline

    def test_cosmetic_change_commits_without_event(self):
        timeline = small_config().build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=2)
        txn.set("title", "renamed mid-flight")
        changes = txn.commit()
        assert [change.path for change in changes] == ["title"]
        assert tuple(timeline.events) == ()
        assert timeline.config.title == "renamed mid-flight"

    def test_double_commit_rejected(self):
        timeline = autoscaled_config().build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=2)
        txn.set("autoscaler.min_sites", 3)
        txn.commit()
        with pytest.raises(ConfigError, match="already committed"):
            txn.commit()

    def test_draining_everything_is_rejected_at_run_time(self):
        config = small_config(fleet=FleetSpec(mode="provisioned", n_sites=2,
                                              headroom=1.4))
        timeline = config.build(clients=CLIENTS, seed=SEED)
        txn = ConfigTransaction(timeline, at_epoch=2)
        with pytest.raises(ConfigError, match="at least one site"):
            txn.set("fleet.active_sites", [])
            txn.commit()
