"""The catalogue's former python scenario builders, kept verbatim.

``repro.scale.catalogue`` now loads its thirteen scenarios from the data
files under ``src/repro/scale/catalogue_data/``; these functions are the
exact builders that used to construct them in code.  The round-trip tests
build every scenario both ways and require ``canonical_result_bytes``
equality, so any drift between the declarative documents and the original
semantics fails loudly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.scale.adversary import (
    AdoptionModel,
    AdversaryGame,
    ClassifierModel,
    IspStrategy,
)
from repro.scale.autoscale import (
    Autoscaler,
    PredictiveLoadPolicy,
    StepPolicy,
    TargetLatencyPolicy,
    elastic_fleet,
)
from repro.scale.catalogue import nominal_demand, provisioned_fleet
from repro.scale.costmodel import CryptoCostModel
from repro.scale.latency import LatencyModel
from repro.scale.population import ClientPopulation, elastic_mix
from repro.scale.stochastic import compile_events, default_processes
from repro.scale.timeline import (
    CapacityDegradation,
    ConstantLoad,
    DiurnalLoad,
    FlashCrowdLoad,
    FluidTimeline,
    LinearRampLoad,
    SiteFailure,
    SiteRecovery,
    DiscriminationToggle,
)


def _flash_crowd(*, clients: int, seed: int,
                 cost_model: Optional[CryptoCostModel],
                 population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.4, cost_model=cost_model)
    total_bps, _ = nominal_demand(population)
    return FluidTimeline(
        population, fleet,
        epochs=48, epoch_seconds=1800.0,
        load=FlashCrowdLoad(base=0.9, spike=6.0, start_seconds=8 * 1800.0,
                            ramp_seconds=2 * 1800.0, hold_seconds=12 * 1800.0,
                            regions_hit=(0, 1)),
        region_uplink_bps=total_bps * 0.6,
    )


def _regional_outage(*, clients: int, seed: int,
                     cost_model: Optional[CryptoCostModel],
                     population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.5, cost_model=cost_model)
    outage = [f"site{i:02d}" for i in range(4)]
    events: List = [SiteFailure(8, name) for name in outage]
    events += [SiteRecovery(20, name) for name in outage]
    return FluidTimeline(
        population, fleet,
        epochs=36, epoch_seconds=3600.0,
        load=ConstantLoad(1.0),
        events=events,
    )


def _diurnal_week(*, clients: int, seed: int,
                  cost_model: Optional[CryptoCostModel],
                  population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.1, cost_model=cost_model)
    return FluidTimeline(
        population, fleet,
        epochs=168, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.35, peak=1.05, timezone_spread=0.25),
    )


def _heterogeneous_fleet(*, clients: int, seed: int,
                         cost_model: Optional[CryptoCostModel],
                         population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.25,
                              cost_model=cost_model, heterogeneous=True)
    return FluidTimeline(
        population, fleet,
        epochs=48, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.4, peak=1.1, timezone_spread=0.3),
    )


def _cascading_overload(*, clients: int, seed: int,
                        cost_model: Optional[CryptoCostModel],
                        population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 12, headroom=1.3, cost_model=cost_model)
    events: List = []
    for wave, site in enumerate(("site03", "site07", "site01", "site09")):
        events.append(CapacityDegradation(4 + wave * 6, site=site, factor=0.4))
        events.append(SiteFailure(7 + wave * 6, site))
    return FluidTimeline(
        population, fleet,
        epochs=40, epoch_seconds=1800.0,
        load=LinearRampLoad(start_level=0.8, end_level=1.15,
                            t0_seconds=0.0, t1_seconds=40 * 1800.0),
        events=events,
    )


def _discrimination_rollout(*, clients: int, seed: int,
                            cost_model: Optional[CryptoCostModel],
                            population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=2.0, cost_model=cost_model)
    events: List = []
    for region in range(population.regions):
        events.append(DiscriminationToggle(
            2 + region * 2, region=region, factor=0.3,
            class_names=("video", "web"), until_epoch=24,
        ))
    return FluidTimeline(
        population, fleet,
        epochs=32, epoch_seconds=3600.0,
        load=ConstantLoad(1.0),
        events=events,
    )


def _autoscaled_diurnal(*, clients: int, seed: int,
                        cost_model: Optional[CryptoCostModel],
                        population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = elastic_fleet(population, 24, nominal_sites=16, at_utilization=0.6,
                          cost_model=cost_model)
    autoscaler = Autoscaler(
        PredictiveLoadPolicy(target=0.6, lead_epochs=2, deadband=0.06),
        min_sites=8, warmup_epochs=2, cooldown_epochs=1,
    )
    return FluidTimeline(
        population, fleet,
        epochs=72, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.3, peak=1.15, timezone_spread=0.25),
        autoscaler=autoscaler,
    )


def _stochastic_unreliable(*, clients: int, seed: int,
                           cost_model: Optional[CryptoCostModel],
                           population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = elastic_fleet(population, 20, nominal_sites=16, at_utilization=0.7,
                          cost_model=cost_model)
    events = compile_events(
        default_processes(failure_rate=0.004, outage_rate=0.02, attack_rate=0.03),
        seed=seed, epochs=60,
        site_names=[site.name for site in fleet.sites],
    )
    autoscaler = Autoscaler(
        StepPolicy(high=0.85, low=0.45, step=2),
        min_sites=12, warmup_epochs=1, cooldown_epochs=1,
    )
    return FluidTimeline(
        population, fleet,
        epochs=60, epoch_seconds=1800.0,
        load=ConstantLoad(1.0),
        events=events,
        autoscaler=autoscaler,
    )


def _elastic_web_mix(*, clients: int, seed: int,
                     cost_model: Optional[CryptoCostModel],
                     population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = ClientPopulation(clients, mix=elastic_mix(), seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=0.95, cost_model=cost_model)
    return FluidTimeline(
        population, fleet,
        epochs=48, epoch_seconds=1800.0,
        load=FlashCrowdLoad(base=0.85, spike=4.0, start_seconds=10 * 1800.0,
                            ramp_seconds=3 * 1800.0, hold_seconds=10 * 1800.0,
                            regions_hit=(0, 1, 2)),
        latency=LatencyModel(),
        latency_slo_seconds=0.04,
    )


def _latency_slo_autoscaled(*, clients: int, seed: int,
                            cost_model: Optional[CryptoCostModel],
                            population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = elastic_fleet(population, 24, nominal_sites=16, at_utilization=0.6,
                          cost_model=cost_model)
    model = LatencyModel()
    autoscaler = Autoscaler(
        TargetLatencyPolicy.for_model(model, target_p95_seconds=0.055),
        min_sites=8, warmup_epochs=1, cooldown_epochs=2,
    )
    return FluidTimeline(
        population, fleet,
        epochs=72, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.35, peak=1.2, timezone_spread=0.25),
        autoscaler=autoscaler,
        latency=model,
        latency_slo_seconds=0.08,
    )


def _adaptive_throttler(*, clients: int, seed: int,
                        cost_model: Optional[CryptoCostModel],
                        population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.3, cost_model=cost_model)
    game = AdversaryGame(
        isp=IspStrategy(aggressiveness=0.6, allow_blanket=False),
        adoption=AdoptionModel(sensitivity=6.0, adoption_cost=0.05),
    )
    return FluidTimeline(
        population, fleet,
        epochs=60, epoch_seconds=1800.0,
        load=ConstantLoad(1.0),
        adversary=game,
        latency=LatencyModel(),
        latency_slo_seconds=0.08,
    )


def _neutralizer_arms_race(*, clients: int, seed: int,
                           cost_model: Optional[CryptoCostModel],
                           population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.3, cost_model=cost_model)
    game = AdversaryGame(
        isp=IspStrategy(
            aggressiveness=1.0, allow_blanket=True,
            blanket_evasion=0.6, backoff_collateral=0.25,
        ),
        adoption=AdoptionModel(sensitivity=14.0, adoption_cost=0.03),
    )
    return FluidTimeline(
        population, fleet,
        epochs=72, epoch_seconds=1800.0,
        load=ConstantLoad(1.0),
        adversary=game,
        latency=LatencyModel(),
        latency_slo_seconds=0.08,
    )


def _targeted_class_slo(*, clients: int, seed: int,
                        cost_model: Optional[CryptoCostModel],
                        population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = elastic_fleet(population, 24, nominal_sites=16, at_utilization=0.6,
                          cost_model=cost_model)
    model = LatencyModel()
    autoscaler = Autoscaler(
        TargetLatencyPolicy.for_model(model, target_p95_seconds=0.055),
        min_sites=8, warmup_epochs=1, cooldown_epochs=2,
    )
    game = AdversaryGame(
        isp=IspStrategy(
            aggressiveness=0.7, target_classes=("video",),
            classifier=ClassifierModel(true_positive=0.97, false_positive=0.01,
                                       neutralized_leakage=0.03),
            allow_blanket=False,
        ),
        adoption=AdoptionModel(sensitivity=8.0, adoption_cost=0.05),
    )
    return FluidTimeline(
        population, fleet,
        epochs=48, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.4, peak=1.1, timezone_spread=0.25),
        autoscaler=autoscaler,
        adversary=game,
        latency=model,
        latency_slo_seconds=0.08,
    )


REFERENCE_BUILDERS = {
    "flash_crowd": _flash_crowd,
    "regional_outage": _regional_outage,
    "diurnal_week": _diurnal_week,
    "heterogeneous_fleet": _heterogeneous_fleet,
    "cascading_overload": _cascading_overload,
    "discrimination_rollout": _discrimination_rollout,
    "autoscaled_diurnal": _autoscaled_diurnal,
    "stochastic_unreliable": _stochastic_unreliable,
    "elastic_web_mix": _elastic_web_mix,
    "latency_slo_autoscaled": _latency_slo_autoscaled,
    "adaptive_throttler": _adaptive_throttler,
    "neutralizer_arms_race": _neutralizer_arms_race,
    "targeted_class_slo": _targeted_class_slo,
}
