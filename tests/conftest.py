"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.crypto.randomness import DeterministicRandom
from repro.netsim.isp import Relationship
from repro.netsim.topology import Topology
from repro.packet.addresses import ip
from repro.units import mbps, msec


@pytest.fixture
def rng():
    """A deterministic random source, fresh per test."""
    return DeterministicRandom(seed=1234)


@pytest.fixture
def small_topology():
    """A 2-ISP / 2-router / 2-host line topology with routes installed.

    Layout: ann (att) - att-br - cogent-br - google (cogent).
    """
    topo = Topology()
    topo.add_isp("att", 7018, "10.1.0.0/16", discriminatory=True)
    topo.add_isp("cogent", 174, "10.3.0.0/16")
    topo.add_router("att-br", "att", border=True)
    topo.add_router("cogent-br", "cogent", border=True)
    topo.add_host("ann", "att")
    topo.add_host("google", "cogent")
    topo.add_link("ann", "att-br", rate_bps=mbps(100), delay_seconds=msec(1))
    topo.add_link("att-br", "cogent-br", rate_bps=mbps(1000), delay_seconds=msec(5))
    topo.add_link("cogent-br", "google", rate_bps=mbps(100), delay_seconds=msec(1))
    topo.set_relationship("att", "cogent", Relationship.PEER)
    topo.build_routes()
    return topo


@pytest.fixture
def anycast_address():
    """The anycast address used by deployment-style tests."""
    return ip("10.200.0.1")
