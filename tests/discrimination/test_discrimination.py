"""Discrimination substrate tests: DPI, match criteria, policies, enforcement."""

import pytest

from repro.discrimination import (
    Action,
    DiscriminationPolicy,
    DiscriminationRule,
    MatchCriteria,
    criteria_for_destination,
    criteria_for_dns_name,
    criteria_for_encrypted_traffic,
    criteria_for_key_setup,
    criteria_for_prefix,
    degrade_competitor_policy,
    delay_dns_policy,
    inspect,
    install_policy,
    throttle_neutral_isp_policy,
)
from repro.dns import DnsQuery
from repro.packet import Dscp, Prefix, ShimHeader, ip, shim_packet, udp_packet
from repro.packet.headers import (
    PROTO_UDP,
    SHIM_TYPE_KEY_SETUP_REQUEST,
    SHIM_TYPE_NEUTRALIZED_DATA,
)


def _voip_packet():
    return udp_packet(ip("10.1.0.1"), ip("10.3.0.5"), b"RTP" + b"\x00" * 100,
                      source_port=16384, destination_port=16384)


def _dns_packet(name="www.google.com"):
    return udp_packet(ip("10.1.0.1"), ip("10.1.0.200"),
                      DnsQuery(query_id=1, name=name).pack(), destination_port=53)


def _neutralized_packet(shim_type=SHIM_TYPE_NEUTRALIZED_DATA):
    shim = ShimHeader(shim_type, PROTO_UDP, b"B" * 19)
    return shim_packet(ip("10.1.0.1"), ip("10.200.0.1"), shim, payload=b"ciphertext")


class TestDpi:
    def test_voip_recognized_by_port(self):
        report = inspect(_voip_packet())
        assert report.application == "voip" and not report.is_encrypted

    def test_dns_query_name_visible_in_cleartext(self):
        report = inspect(_dns_packet())
        assert report.dns_query_name == "www.google.com" and report.application == "dns"

    def test_neutralized_packet_hides_application(self):
        report = inspect(_neutralized_packet())
        assert report.is_encrypted and report.is_neutralized
        assert report.application is None and report.dns_query_name is None

    def test_key_setup_recognized_as_such(self):
        report = inspect(_neutralized_packet(SHIM_TYPE_KEY_SETUP_REQUEST))
        assert report.is_key_setup


class TestCriteria:
    def test_involves_address_matches_either_direction(self):
        criteria = criteria_for_destination(ip("10.3.0.5"))
        toward = udp_packet(ip("10.1.0.1"), ip("10.3.0.5"), b"x")
        backward = udp_packet(ip("10.3.0.5"), ip("10.1.0.1"), b"x")
        unrelated = udp_packet(ip("10.1.0.1"), ip("10.3.0.6"), b"x")
        assert criteria.matches(toward) and criteria.matches(backward)
        assert not criteria.matches(unrelated)

    def test_prefix_criteria(self):
        criteria = criteria_for_prefix(Prefix.parse("10.3.0.0/16"))
        assert criteria.matches(udp_packet(ip("10.1.0.1"), ip("10.3.9.9"), b"x"))
        assert not criteria.matches(udp_packet(ip("10.1.0.1"), ip("10.4.0.1"), b"x"))

    def test_dns_name_criteria(self):
        criteria = criteria_for_dns_name("www.google.com")
        assert criteria.matches(_dns_packet("www.google.com"))
        assert not criteria.matches(_dns_packet("www.bing.com"))

    def test_encrypted_and_keysetup_criteria(self):
        assert criteria_for_encrypted_traffic().matches(_neutralized_packet())
        assert criteria_for_key_setup().matches(
            _neutralized_packet(SHIM_TYPE_KEY_SETUP_REQUEST))
        assert not criteria_for_key_setup().matches(_neutralized_packet())

    def test_dscp_and_size_criteria(self):
        criteria = MatchCriteria(name="big-ef", dscp=int(Dscp.EF), minimum_size_bytes=100)
        big = udp_packet(ip("1.1.1.1"), ip("2.2.2.2"), b"x" * 200, dscp=int(Dscp.EF))
        small = udp_packet(ip("1.1.1.1"), ip("2.2.2.2"), b"x" * 10, dscp=int(Dscp.EF))
        assert criteria.matches(big) and not criteria.matches(small)

    def test_crucial_property_neutralization_defeats_targeting(self):
        # Once traffic is neutralized, a rule keyed on the competitor's
        # address can never match again: the address is simply not visible.
        competitor = ip("10.3.0.5")
        criteria = criteria_for_destination(competitor)
        assert not criteria.matches(_neutralized_packet())


class TestPolicy:
    def test_first_match_and_statistics(self):
        policy = degrade_competitor_policy(ip("10.3.0.5"))
        packet = udp_packet(ip("10.1.0.1"), ip("10.3.0.5"), b"x")
        matches = policy.evaluate_all(packet)
        assert len(matches) == 2
        stats = policy.stats_for(matches[0].name)
        assert stats.matched_packets == 1

    def test_rule_parameter_validation(self):
        with pytest.raises(ValueError):
            DiscriminationRule(criteria=MatchCriteria(), action=Action.DELAY)
        with pytest.raises(ValueError):
            DiscriminationRule(criteria=MatchCriteria(), action=Action.THROTTLE)
        with pytest.raises(ValueError):
            DiscriminationRule(criteria=MatchCriteria(), action=Action.DROP,
                               drop_probability=1.5)

    def test_describe_mentions_rules(self):
        policy = delay_dns_policy("www.google.com")
        assert "dns" in policy.describe()


class TestEnforcement:
    def test_drop_policy_blocks_traffic(self, small_topology, rng):
        google = small_topology.host("google")
        ann = small_topology.host("ann")
        policy = DiscriminationPolicy("block", [
            DiscriminationRule(criteria=criteria_for_destination(google.address),
                               action=Action.DROP),
        ])
        deployment = install_policy(small_topology, "att", policy, rng=rng)
        got = []
        google.register_port_handler(5000, lambda p, h: got.append(p))
        for _ in range(10):
            ann.send(udp_packet(ann.address, google.address, b"x", destination_port=5000))
        small_topology.run(2.0)
        assert got == []
        assert deployment.total_dropped == 10
        assert "att" in deployment.describe()

    def test_delay_policy_adds_latency(self, small_topology, rng):
        google = small_topology.host("google")
        ann = small_topology.host("ann")
        policy = DiscriminationPolicy("slow", [
            DiscriminationRule(criteria=criteria_for_destination(google.address),
                               action=Action.DELAY, delay_seconds=0.2),
        ])
        install_policy(small_topology, "att", policy, rng=rng)
        arrivals = []
        google.register_port_handler(5000, lambda p, h: arrivals.append(h.sim.now))
        ann.send(udp_packet(ann.address, google.address, b"x", destination_port=5000))
        small_topology.run(2.0)
        assert len(arrivals) == 1 and arrivals[0] > 0.2

    def test_throttle_policy_caps_rate(self, small_topology, rng):
        google = small_topology.host("google")
        ann = small_topology.host("ann")
        policy = throttle_neutral_isp_policy(Prefix.parse("10.3.0.0/16"), rate_bps=8_000)
        install_policy(small_topology, "att", policy, rng=rng)
        got = []
        google.register_port_handler(5000, lambda p, h: got.append(p))
        for i in range(100):
            small_topology.sim.schedule(
                i * 0.01,
                lambda: ann.send(udp_packet(ann.address, google.address, b"y" * 500,
                                            destination_port=5000)))
        small_topology.run(3.0)
        assert 0 < len(got) < 60  # roughly 1 kB/s through a 500-byte-packet stream

    def test_deprioritize_rewrites_dscp(self, small_topology, rng):
        google = small_topology.host("google")
        ann = small_topology.host("ann")
        policy = DiscriminationPolicy("scavenge", [
            DiscriminationRule(criteria=criteria_for_destination(google.address),
                               action=Action.DEPRIORITIZE),
        ])
        install_policy(small_topology, "att", policy, rng=rng)
        got = []
        google.register_port_handler(5000, lambda p, h: got.append(p))
        ann.send(udp_packet(ann.address, google.address, b"x", destination_port=5000,
                            dscp=int(Dscp.EF)))
        small_topology.run(1.0)
        assert got[0].dscp == int(Dscp.CS1)
