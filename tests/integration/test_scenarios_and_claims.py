"""Integration tests: the Figure-1 scenario and the paper's headline claims."""

import pytest

from repro.analysis.experiments import (
    run_datapath_throughput,
    run_dos_design_comparison,
    run_key_setup_throughput,
    run_keysize_tradeoff,
    run_multihoming_experiment,
    run_onion_comparison,
)
from repro.analysis.scenarios import COGENT_ANYCAST, build_dumbbell, build_figure1
from repro.apps.voip import VoipCall, VoipReceiver
from repro.discrimination import degrade_competitor_policy, install_policy
from repro.packet import udp_packet


class TestFigure1Scenario:
    def test_topology_shape(self):
        scenario = build_figure1(neutralized=False)
        topology = scenario.topology
        assert {"att", "verizon", "cogent"} <= set(topology.isps.names())
        assert len(topology.hosts) == 9
        assert scenario.deployment is None

    def test_neutralized_build_attaches_stacks(self):
        scenario = build_figure1(neutralized=True, client_hosts=("ann",),
                                 server_hosts=("google", "vonage"))
        assert scenario.deployment is not None
        assert set(scenario.deployment.servers) == {"google", "vonage"}
        assert "ann" in scenario.deployment.clients
        assert COGENT_ANYCAST in scenario.topology.anycast_groups

    def test_dumbbell_builder(self):
        topology = build_dumbbell(clients=3, servers=2)
        assert len(topology.hosts) == 5
        assert topology.link_between("left-gw", "right-gw") is not None


class TestHeadlineClaims:
    """The paper's qualitative claims, checked end to end on small runs."""

    def test_discrimination_works_without_neutralizer(self):
        scenario = build_figure1(neutralized=False, client_hosts=(), server_hosts=())
        topology = scenario.topology
        vonage = topology.host("vonage")
        ann = topology.host("ann")
        install_policy(topology, "att", degrade_competitor_policy(vonage.address),
                       rng=scenario.rng)
        receiver = VoipReceiver(vonage)
        call = VoipCall(ann, vonage.address, receiver, duration_seconds=1.5)
        call.start()
        topology.run(4.0)
        report = call.report()
        assert report.loss_rate > 0.05 or report.mean_latency_seconds > 0.1
        assert not report.is_usable

    def test_neutralizer_defeats_targeted_discrimination(self):
        scenario = build_figure1(neutralized=True, client_hosts=("ann",),
                                 server_hosts=("vonage",))
        topology = scenario.topology
        vonage = topology.host("vonage")
        ann = topology.host("ann")
        install_policy(topology, "att", degrade_competitor_policy(vonage.address),
                       rng=scenario.rng)
        receiver = VoipReceiver(vonage)
        call = VoipCall(ann, vonage.address, receiver, duration_seconds=1.5)
        call.start()
        topology.run(4.0)
        report = call.report()
        assert report.loss_rate == 0.0
        assert report.is_usable
        # And AT&T never saw the competitor's address on any packet.
        assert not scenario.att_trace.ever_saw_address(vonage.address)

    def test_att_cannot_read_payload_or_ports_of_neutralized_traffic(self):
        scenario = build_figure1(neutralized=True, client_hosts=("ann",),
                                 server_hosts=("google",))
        topology = scenario.topology
        ann = topology.host("ann")
        google = topology.host("google")
        google.register_port_handler(5000, lambda p, h: None)
        ann.send(udp_packet(ann.address, google.address, b"SECRET-CONTENT",
                            destination_port=5000))
        topology.run(2.0)
        assert not scenario.att_trace.payload_contains(b"SECRET")
        assert not scenario.att_trace.ever_saw_address(google.address)


class TestExperimentRunnersSmoke:
    """Small-sized smoke runs of the benchmark experiment functions."""

    def test_e1_key_setup(self):
        result = run_key_setup_throughput(iterations=20)
        assert result.throughput.per_second > 0
        assert result.sources_served_per_lifetime > result.throughput.per_second

    def test_e2_datapath_ordering(self):
        result = run_datapath_throughput(iterations=200)
        # Shape check from the paper: neutralized forwarding is slower than
        # vanilla forwarding of same-size packets, but the same order of
        # magnitude (the paper's ratio is 0.70; interpreter overhead pushes
        # ours lower, see EXPERIMENTS.md).
        assert 0.05 < result.relative_throughput < 1.0
        assert result.neutralized_packet_bytes > result.vanilla_packet_bytes

    def test_e6_onion_comparison(self):
        result = run_onion_comparison(flows=4, packets_per_flow=3)
        rows = {name: (a, b) for name, a, b in result.measured_rows}
        assert rows["state entries (all boxes/relays)"] == (0.0, 12.0)
        assert rows["public-key operations"][0] < rows["public-key operations"][1]
        assert rows["AES ops per data packet"][0] < rows["AES ops per data packet"][1]

    def test_e7_keysize_tradeoff(self):
        result = run_keysize_tradeoff(key_sizes=(384, 512), iterations=2)
        assert result.rows[0].symmetric_equivalent < result.rows[1].symmetric_equivalent
        assert all(row.safety_margin > 1.0 for row in result.rows)

    def test_e8_design_comparison(self):
        result = run_dos_design_comparison(iterations=10)
        assert result.advantage > 1.0

    def test_e10_multihoming(self):
        result = run_multihoming_experiment(flows=200)
        shares = result.splits["round-robin"]
        assert all(abs(share - 0.5) < 0.01 for share in shares.values())
        assert result.adaptive_prefers_survivor
