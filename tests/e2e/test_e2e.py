"""End-to-end encryption layer tests (ESP-like SAs and the handshake)."""

import pytest

from repro.e2e import (
    EspSecurityAssociation,
    E2eInitiator,
    E2eResponder,
    establish_pair,
    generate_host_keypair,
    overhead_bytes,
    sessions_from_secret,
)
from repro.exceptions import DecryptionError, SignatureError


def _sa(spi=1, key=b"k" * 16, integrity=b"i" * 32):
    return EspSecurityAssociation(spi=spi, encryption_key=key, integrity_key=integrity)


class TestEsp:
    def test_protect_unprotect_roundtrip(self, rng):
        sender = _sa()
        receiver = _sa()
        payload = sender.protect(b"application bytes", rng)
        assert receiver.unprotect(payload) == b"application bytes"

    def test_integrity_failure_detected(self, rng):
        sender, receiver = _sa(), _sa()
        payload = bytearray(sender.protect(b"application bytes", rng))
        payload[12] ^= 0xFF
        with pytest.raises(SignatureError):
            receiver.unprotect(bytes(payload))

    def test_replay_detected(self, rng):
        sender, receiver = _sa(), _sa()
        payload = sender.protect(b"data", rng)
        receiver.unprotect(payload)
        with pytest.raises(DecryptionError):
            receiver.unprotect(payload)

    def test_wrong_spi_rejected(self, rng):
        sender = _sa(spi=1)
        receiver = _sa(spi=2)
        with pytest.raises(DecryptionError):
            receiver.unprotect(sender.protect(b"data", rng))

    def test_overhead_accounted(self, rng):
        sender = _sa()
        payload = sender.protect(b"x" * 10, rng)
        assert len(payload) >= 10 + overhead_bytes()

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            EspSecurityAssociation(spi=1, encryption_key=b"short", integrity_key=b"i" * 32)


class TestHandshake:
    def test_full_handshake(self, rng):
        keypair = generate_host_keypair(1024, rng)
        initiator_session, responder_session = establish_pair(keypair, rng)
        ct = initiator_session.protect(b"hello responder", rng)
        assert responder_session.unprotect(ct) == b"hello responder"
        ct2 = responder_session.protect(b"hello initiator", rng)
        assert initiator_session.unprotect(ct2) == b"hello initiator"

    def test_establish_before_handshake_fails(self, rng):
        with pytest.raises(DecryptionError):
            E2eInitiator(rng=rng).establish()

    def test_responder_rejects_garbage(self, rng):
        keypair = generate_host_keypair(1024, rng)
        responder = E2eResponder(keypair)
        with pytest.raises(Exception):
            responder.accept_handshake(b"\x00" * keypair.private.byte_length)

    def test_sessions_from_secret_interoperate(self):
        initiator, responder = sessions_from_secret(b"s" * 16)
        assert responder.unprotect(initiator.protect(b"reverse direction")) == b"reverse direction"
        assert initiator.unprotect(responder.protect(b"and back")) == b"and back"

    def test_sessions_from_short_secret_rejected(self):
        with pytest.raises(DecryptionError):
            sessions_from_secret(b"short")
