"""Packet model tests: addresses, prefixes, headers, serialization, DSCP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AddressError, HeaderError, TruncatedPacketError
from repro.packet import (
    AddressAllocator,
    AnycastGroup,
    AnycastAddress,
    Dscp,
    IPv4Address,
    IPv4Header,
    Packet,
    Prefix,
    ShimHeader,
    UdpHeader,
    class_of,
    internet_checksum,
    ip,
    is_valid_dscp,
    prefix,
    priority_of,
    shim_packet,
    udp_packet,
)
from repro.packet.headers import PROTO_NEUTRALIZER_SHIM, PROTO_UDP


class TestAddresses:
    def test_parse_and_str_roundtrip(self):
        assert str(ip("10.1.2.3")) == "10.1.2.3"

    def test_packed_roundtrip(self):
        address = ip("192.168.0.1")
        assert IPv4Address.from_bytes(address.packed) == address

    def test_invalid_addresses_rejected(self):
        for text in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(AddressError):
                ip(text)

    def test_ordering_and_hashing(self):
        assert ip("10.0.0.1") < ip("10.0.0.2")
        assert len({ip("10.0.0.1"), ip("10.0.0.1")}) == 1

    def test_prefix_contains(self):
        p = prefix("10.3.0.0/16")
        assert p.contains(ip("10.3.200.1"))
        assert not p.contains(ip("10.4.0.1"))

    def test_prefix_host_bits_rejected(self):
        with pytest.raises(AddressError):
            prefix("10.3.0.1/16")

    def test_prefix_host_indexing(self):
        p = prefix("10.3.0.0/24")
        assert str(p.host(1)) == "10.3.0.1"
        with pytest.raises(AddressError):
            p.host(300)

    def test_allocator_is_sequential_and_bounded(self):
        allocator = AddressAllocator(prefix("10.5.0.0/30"))
        first = allocator.allocate()
        second = allocator.allocate()
        assert (first.value, second.value) == (ip("10.5.0.1").value, ip("10.5.0.2").value)
        with pytest.raises(AddressError):
            allocator.allocate()

    def test_anycast_group_membership(self):
        group = AnycastGroup(AnycastAddress(ip("10.200.0.1")))
        group.add_member("r1")
        group.add_member("r2")
        group.add_member("r1")
        assert len(group) == 2 and "r1" in group
        group.remove_member("r1")
        assert "r1" not in group


class TestDscp:
    def test_priority_ordering(self):
        assert priority_of(Dscp.EF) > priority_of(Dscp.AF21) > priority_of(Dscp.CS1)

    def test_unknown_value_defaults_to_best_effort_priority(self):
        assert priority_of(63) == priority_of(Dscp.BEST_EFFORT)

    def test_class_names(self):
        assert class_of(Dscp.EF) == "voice"
        assert class_of(Dscp.BEST_EFFORT) == "best-effort"

    def test_validity(self):
        assert is_valid_dscp(0) and is_valid_dscp(63) and not is_valid_dscp(64)


class TestHeaders:
    def test_ipv4_pack_unpack_roundtrip(self):
        header = IPv4Header(source=ip("10.1.0.1"), destination=ip("10.3.0.2"),
                            protocol=PROTO_UDP, dscp=46, ttl=61, total_length=40)
        assert IPv4Header.unpack(header.pack()) == header

    def test_checksum_validates(self):
        header = IPv4Header(source=ip("1.2.3.4"), destination=ip("5.6.7.8"))
        raw = bytearray(header.pack())
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(HeaderError):
            IPv4Header.unpack(bytes(raw))
        assert internet_checksum(header.pack()) == 0

    def test_field_validation(self):
        with pytest.raises(HeaderError):
            IPv4Header(source=ip("1.1.1.1"), destination=ip("2.2.2.2"), dscp=70)
        with pytest.raises(HeaderError):
            IPv4Header(source=ip("1.1.1.1"), destination=ip("2.2.2.2"), ttl=300)

    def test_ttl_decrement(self):
        header = IPv4Header(source=ip("1.1.1.1"), destination=ip("2.2.2.2"), ttl=2)
        assert header.decremented_ttl().ttl == 1
        with pytest.raises(HeaderError):
            IPv4Header(source=ip("1.1.1.1"), destination=ip("2.2.2.2"), ttl=0).decremented_ttl()

    def test_udp_roundtrip(self):
        header = UdpHeader(source_port=1234, destination_port=53, length=20)
        assert UdpHeader.unpack(header.pack()) == header

    def test_shim_roundtrip(self):
        shim = ShimHeader(shim_type=3, next_protocol=17, body=b"opaque body")
        assert ShimHeader.unpack(shim.pack()) == shim

    def test_shim_truncation_detected(self):
        shim = ShimHeader(shim_type=3, next_protocol=17, body=b"opaque body")
        with pytest.raises(TruncatedPacketError):
            ShimHeader.unpack(shim.pack()[:-3])


class TestPacket:
    def test_udp_packet_sizes(self):
        packet = udp_packet(ip("10.1.0.1"), ip("10.3.0.2"), b"x" * 64)
        assert packet.size_bytes == 20 + 8 + 64

    def test_serialize_deserialize_roundtrip(self):
        packet = udp_packet(ip("10.1.0.1"), ip("10.3.0.2"), b"hello", dscp=int(Dscp.EF))
        restored = Packet.deserialize(packet.serialize())
        assert restored.source == packet.source
        assert restored.destination == packet.destination
        assert restored.payload == b"hello"
        assert restored.dscp == int(Dscp.EF)

    def test_shim_packet_roundtrip(self):
        shim = ShimHeader(shim_type=3, next_protocol=PROTO_UDP, body=b"B" * 19)
        packet = shim_packet(ip("10.1.0.1"), ip("10.200.0.1"), shim, payload=b"payload")
        assert packet.ip.protocol == PROTO_NEUTRALIZER_SHIM
        restored = Packet.deserialize(packet.serialize())
        assert restored.shim is not None and restored.shim.body == b"B" * 19

    def test_with_and_without_shim(self):
        packet = udp_packet(ip("10.1.0.1"), ip("10.3.0.2"), b"data")
        shimmed = packet.with_shim(ShimHeader(1, PROTO_UDP, b"zz"))
        assert shimmed.ip.protocol == PROTO_NEUTRALIZER_SHIM
        plain = shimmed.without_shim()
        assert plain.shim is None and plain.ip.protocol == PROTO_UDP

    def test_replace_ip_preserves_everything_else(self):
        packet = udp_packet(ip("10.1.0.1"), ip("10.3.0.2"), b"data", dscp=34)
        rewritten = packet.replace_ip(destination=ip("10.9.9.9"))
        assert rewritten.destination == ip("10.9.9.9")
        assert rewritten.source == packet.source
        assert rewritten.dscp == 34
        assert rewritten.payload == b"data"

    def test_copy_is_independent(self):
        packet = udp_packet(ip("10.1.0.1"), ip("10.3.0.2"), b"data", flow_id="f")
        clone = packet.copy()
        clone.meta["flow_id"] = "other"
        clone.record_hop("r1")
        assert packet.meta["flow_id"] == "f" and packet.hops == []

    def test_truncated_buffer_rejected(self):
        packet = udp_packet(ip("10.1.0.1"), ip("10.3.0.2"), b"data")
        with pytest.raises(TruncatedPacketError):
            Packet.deserialize(packet.serialize()[:-2])

    @given(st.binary(min_size=0, max_size=300), st.integers(min_value=0, max_value=63))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, payload, dscp):
        packet = udp_packet(ip("10.1.0.1"), ip("10.3.0.2"), payload, dscp=dscp)
        restored = Packet.deserialize(packet.serialize())
        assert restored.payload == payload and restored.dscp == dscp
